//! The datacenter world: event-driven orchestration of substrate,
//! faults, workload, and the management layer (manual or intelliagent).
//!
//! The world is a deterministic discrete-event simulation. One run under
//! [`ManagementMode::ManualOps`] reproduces the paper's "year before";
//! the same seed under [`ManagementMode::Intelliagents`] reproduces the
//! "year after" — the exogenous fault tape and the analyst workload tape
//! are bit-identical between the two, so the comparison is paired.

// qoslint::allow-file(no-panic, world construction and event dispatch treat broken cross-references as fatal bugs: every expect names a structural invariant and failing fast beats simulating a corrupt site)
use std::collections::{BTreeMap, BTreeSet};

use intelliqos_simkern::{
    EventQueue, EventToken, MetricsRegistry, Profiler, SimDuration, SimRng, SimTime, Subsystem,
    Trace, TraceOptions,
};

use intelliqos_cluster::faults::{
    Complexity, FaultCategory, FaultEvent, FaultInjector, FaultMechanism, TargetClass,
};
use intelliqos_cluster::hardware::{ComponentHealth, HardwareComponent, ServerModel};
use intelliqos_cluster::ids::{SegmentId, ServerId, Site};
use intelliqos_cluster::net::{Fabric, SegmentKind};
use intelliqos_cluster::server::Server;

use intelliqos_baseline::ops::ManualRepairModel;
use intelliqos_baseline::patrol::HumanDetectionModel;

use intelliqos_lsf::cluster::{db_crash_roll, LsfCluster};
use intelliqos_lsf::job::{FailReason, Job, JobId};
use intelliqos_lsf::select::{
    ManualStickySelector, RandomSelector, ServerCandidate, ServerSelector,
};
use intelliqos_lsf::workload::{Arrival, WorkloadGenerator};

use intelliqos_ontology::dgspl::Dgspl;
use intelliqos_qoslint::ontology::{check_site, SiteOntology};
use intelliqos_qoslint::{diag::render_report, Diagnostic, Severity};

use intelliqos_services::distributed::{DistributedApp, E2eResult};
use intelliqos_services::instance::{ServiceId, ServiceStatus};
use intelliqos_services::registry::ServiceRegistry;
use intelliqos_services::spec::{DbEngine, ServiceSpec};

use crate::admin::AdminPair;
use crate::agents::{run_hardware_agent, run_os_resource_agents, run_service_agent};
use crate::downtime::{Actor, DowntimeLedger, IncidentId};
use crate::notify::NotificationBus;
use crate::ontogen;
use crate::resched::DgsplSelector;
use crate::scenario::{ManagementMode, ReschedPolicy, ScenarioConfig, ScenarioReport};
use crate::slo::SloTracker;
use crate::status::run_status_agent;

use intelliqos_ontology::constraint::ConstraintStore;
use intelliqos_telemetry::collector::PerfCollector;
use intelliqos_telemetry::metrics::{os_metrics, MetricGroup};

/// Events the world processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldEvent {
    /// Analyst submits workload-tape entry `i`.
    SubmitArrival(usize),
    /// Fault-tape entry `i` strikes.
    InjectFault(usize),
    /// A running job reaches its expected end.
    JobDone(JobId),
    /// Periodic overload-crash hazard evaluation.
    CrashSweep,
    /// Periodic intelliagent wake-up on every server.
    AgentSweep,
    /// Periodic admin-server flag check + job resubmission.
    AdminSweep,
    /// Periodic DLSP collection + DGSPL regeneration.
    DgsplRegen,
    /// Periodic end-to-end dummy transaction.
    E2eSweep,
    /// Periodic performance collection (§3.5's 10–15 minute cadence).
    PerfSweep,
    /// A human finishes repairing an incident.
    ManualRestore(IncidentId),
    /// A service finishes starting.
    ServiceReady(ServiceId),
    /// A server finishes rebooting.
    RebootDone(ServerId),
}

impl WorldEvent {
    /// Stable machine-readable kind label, used as the per-event-kind
    /// metrics counter and profiler span name.
    pub fn kind(&self) -> &'static str {
        match self {
            WorldEvent::SubmitArrival(_) => "submit-arrival",
            WorldEvent::InjectFault(_) => "inject-fault",
            WorldEvent::JobDone(_) => "job-done",
            WorldEvent::CrashSweep => "crash-sweep",
            WorldEvent::AgentSweep => "agent-sweep",
            WorldEvent::AdminSweep => "admin-sweep",
            WorldEvent::DgsplRegen => "dgspl-regen",
            WorldEvent::E2eSweep => "e2e-sweep",
            WorldEvent::PerfSweep => "perf-sweep",
            WorldEvent::ManualRestore(_) => "manual-restore",
            WorldEvent::ServiceReady(_) => "service-ready",
            WorldEvent::RebootDone(_) => "reboot-done",
        }
    }

    /// Every kind label, in match order (drives profile tables).
    pub const KINDS: [&'static str; 12] = [
        "submit-arrival",
        "inject-fault",
        "job-done",
        "crash-sweep",
        "agent-sweep",
        "admin-sweep",
        "dgspl-regen",
        "e2e-sweep",
        "perf-sweep",
        "manual-restore",
        "service-ready",
        "reboot-done",
    ];
}

/// How an open fault's effects get undone at repair time.
#[derive(Debug, Clone, PartialEq)]
enum Undo {
    RestartService(ServiceId),
    KillProcess(ServerId, String),
    RotateLogs(ServerId),
    FixNtp(ServerId),
    EnableCron(ServerId),
    UnblockFirewall(SegmentId, ServerId),
    SegmentUp(SegmentId),
    RepairComponent(ServerId, HardwareComponent),
    ServerRepair(ServerId),
    ClearExternalLoad(ServerId),
}

/// Bookkeeping for a fault whose effect is still live.
#[derive(Debug, Clone)]
struct OpenFault {
    incident: IncidentId,
    mechanism: FaultMechanism,
    server: Option<ServerId>,
    undo: Undo,
}

/// Dispatch policy wrapper: first attempts follow the users' manual
/// sticky habit in **both** modes (that is how the site worked);
/// resubmissions follow the configured policy.
struct WorldSelector<'a> {
    manual: &'a mut ManualStickySelector,
    random: &'a mut RandomSelector,
    dgspl: &'a mut DgsplSelector,
    mode: ManagementMode,
    policy: ReschedPolicy,
}

impl ServerSelector for WorldSelector<'_> {
    fn select(&mut self, job: &Job, candidates: &[ServerCandidate]) -> Option<ServerId> {
        if job.attempts == 0 {
            return self.manual.select(job, candidates);
        }
        match (self.mode, self.policy) {
            (ManagementMode::ManualOps, _) => self.manual.select(job, candidates),
            (ManagementMode::Intelliagents, ReschedPolicy::Dgspl) => {
                self.dgspl.select(job, candidates)
            }
            (ManagementMode::Intelliagents, ReschedPolicy::Random) => {
                self.random.select(job, candidates)
            }
            (ManagementMode::Intelliagents, ReschedPolicy::ManualSticky) => {
                self.manual.select(job, candidates)
            }
        }
    }

    fn name(&self) -> &'static str {
        "world-composite"
    }
}

/// How much of the repair pipeline the configured agent parts can
/// actually drive (the ABL-PARTS ablation flips these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RepairPower {
    /// Monitor + diagnose + heal: agents fix healable faults themselves.
    Full,
    /// Monitor + diagnose but no healing: agents page humans within one
    /// sweep; repair stays manual.
    DetectOnly,
    /// Monitoring or diagnosing disabled (or manual mode): detection
    /// falls back to the console-watch model.
    Blind,
}

/// An invalid site ontology, carrying every rule violation found. The
/// `Display` form is the full rustc-style report, so `World::build`'s
/// fail-fast panic names each rule, location, and fix hint.
#[derive(Debug)]
pub struct OntologyError {
    /// The individual rule violations.
    pub diags: Vec<Diagnostic>,
}

impl std::fmt::Display for OntologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid site ontology — refusing to construct the world\n{}",
            render_report(&self.diags)
        )
    }
}

impl std::error::Error for OntologyError {}

/// The full simulated datacenter.
pub struct World {
    /// Configuration the world was built from.
    pub cfg: ScenarioConfig,
    /// Every server, including the two admin servers.
    pub servers: BTreeMap<ServerId, Server>,
    /// The network fabric (private agent LAN + public LANs).
    pub fabric: Fabric,
    /// All deployed services.
    pub registry: ServiceRegistry,
    /// The batch cluster.
    pub lsf: LsfCluster,
    /// Notifications sent to humans.
    pub bus: NotificationBus,
    /// Incident accounting.
    pub ledger: DowntimeLedger,
    /// The admin HA pair.
    pub admin: AdminPair,
    /// Endogenous database crashes so far.
    pub db_crash_count: u64,
    /// Structured event log (disabled by default; enable before running
    /// with [`World::enable_trace`] for triage and divergence checks).
    pub trace: Trace,
    /// Run metrics: per-event-kind and per-subsystem counters, gauges,
    /// size histograms. Disabled by default; see [`World::enable_profile`].
    pub metrics: MetricsRegistry,
    /// Wall-clock span profiler over the hot path: event dispatch by
    /// kind, agent sweeps by category, DGSPL regeneration, LSF
    /// dispatch. Disabled by default; see [`World::enable_profile`].
    pub profiler: Profiler,
    /// The online QoS observatory: per-service availability budgets,
    /// MTTR, and burn-rate alerts, maintained at every incident close.
    /// Always on — pure simulation-time arithmetic.
    pub slo: SloTracker,

    queue: EventQueue<WorldEvent>,
    fault_tape: Vec<FaultEvent>,
    workload_tape: Vec<Arrival>,
    open_faults: Vec<OpenFault>,
    open_by_service: BTreeMap<ServiceId, (IncidentId, bool)>,
    cron_enabled: BTreeMap<ServerId, bool>,
    job_tokens: BTreeMap<JobId, EventToken>,

    perf: BTreeMap<ServerId, PerfCollector>,
    active_breaches: BTreeSet<(ServerId, String)>,

    db_hosts: Vec<ServerId>,
    tx_hosts: Vec<ServerId>,
    fe_hosts: Vec<ServerId>,
    db_service_of: BTreeMap<ServerId, ServiceId>,
    expected_procs_of: BTreeMap<ServerId, Vec<String>>,
    lsf_master_service: ServiceId,
    lsf_master_host: ServerId,
    apps: Vec<DistributedApp>,
    private_seg: SegmentId,
    public_segs: Vec<SegmentId>,

    manual_selector: ManualStickySelector,
    random_selector: RandomSelector,
    dgspl_selector: DgsplSelector,
    detection: HumanDetectionModel,
    repair_model: ManualRepairModel,

    rng_probe: SimRng,
    rng_crash: SimRng,
    rng_detect: SimRng,
    rng_repair: SimRng,
    rng_target: SimRng,
}

impl World {
    /// Build the datacenter from a configuration. Everything is
    /// deterministic in `(cfg, cfg.seed)`.
    ///
    /// Fail-fast wrapper around [`World::try_build`]: an ontology that
    /// violates a site constraint (startup-sequence cycle, duplicate
    /// port on a co-hosted pair, dangling dependency, …) panics with
    /// the full rustc-style diagnostic report naming each rule, rather
    /// than simulating a site that could never boot.
    pub fn build(cfg: ScenarioConfig) -> World {
        match World::try_build(cfg) {
            Ok(world) => world,
            Err(err) => panic!("{err}"),
        }
    }

    /// Build the datacenter, returning the ontology diagnostics instead
    /// of constructing when the implied site ontology is invalid. The
    /// check runs on the exact SLKT/ISSL set that `install_ontologies`
    /// materialises, before any service is started.
    pub fn try_build(cfg: ScenarioConfig) -> Result<World, OntologyError> {
        let seed = cfg.seed;
        let site = Site::new("London", "LDN-DC1");
        let mut servers: BTreeMap<ServerId, Server> = BTreeMap::new();
        let mut registry = ServiceRegistry::new();
        let mut host_ids = BTreeMap::new();
        let mut db_service_of = BTreeMap::new();
        let mut next_id = 0u32;
        let mut alloc = |servers: &mut BTreeMap<ServerId, Server>,
                         host_ids: &mut BTreeMap<String, ServerId>,
                         hostname: String,
                         model: ServerModel|
         -> ServerId {
            let id = ServerId(next_id);
            next_id += 1;
            host_ids.insert(hostname.clone(), id);
            servers.insert(
                id,
                Server::new(id, hostname, model.default_spec(), site.clone()),
            );
            id
        };

        // Database tier: 70 % E4500, 30 % E10K; Oracle/Sybase mix.
        let mut db_hosts = Vec::new();
        for i in 0..cfg.db_servers {
            let model = if i % 10 < 7 {
                ServerModel::SunE4500
            } else {
                ServerModel::SunE10k
            };
            let id = alloc(&mut servers, &mut host_ids, format!("db{i:03}"), model);
            db_hosts.push(id);
            let engine = if i % 3 == 0 {
                DbEngine::Sybase
            } else {
                DbEngine::Oracle
            };
            let svc = registry.deploy(
                ServiceSpec::database(format!("trades-db-{i:03}"), engine),
                id,
            );
            db_service_of.insert(id, svc);
        }

        // Transaction tier: mixed models; web servers, name servers,
        // market-data feeds, and the LSF master live here.
        let tx_models = [
            ServerModel::SunE10k,
            ServerModel::SunUltra10,
            ServerModel::LinuxBox,
            ServerModel::SunE450,
            ServerModel::SunE220r,
            ServerModel::HpKClass,
            ServerModel::HpTClass,
        ];
        let mut tx_hosts = Vec::new();
        let mut web_names = Vec::new();
        let mut ns_name = None;
        for i in 0..cfg.tx_servers {
            let model = tx_models[(i as usize) % tx_models.len()];
            let id = alloc(&mut servers, &mut host_ids, format!("tx{i:03}"), model);
            tx_hosts.push(id);
            if i == 0 {
                let name = "dns-1".to_string();
                registry.deploy(ServiceSpec::name_server(name.clone()), id);
                ns_name = Some(name);
            } else if i == 1 {
                registry.deploy(
                    ServiceSpec::market_data_feed("mktdata-1", ns_name.clone().unwrap()),
                    id,
                );
            } else {
                let name = format!("web-{i:03}");
                registry.deploy(ServiceSpec::web_server(name.clone()), id);
                web_names.push(name);
            }
        }
        // The LSF master daemon rides on the first transaction server.
        let lsf_master_host = tx_hosts[0];
        let lsf_master_service =
            registry.deploy(ServiceSpec::lsf_master("lsf-master"), lsf_master_host);

        // Front-end tier: IBM SP2 nodes, each depending on a database
        // and a web tier instance (round-robin).
        let mut fe_hosts = Vec::new();
        let mut fe_service_of = BTreeMap::new();
        for i in 0..cfg.fe_servers {
            let id = alloc(
                &mut servers,
                &mut host_ids,
                format!("fe{i:03}"),
                ServerModel::IbmSp2,
            );
            fe_hosts.push(id);
            let db_dep = format!("trades-db-{:03}", i % cfg.db_servers);
            let web_dep = if web_names.is_empty() {
                format!("trades-db-{:03}", i % cfg.db_servers)
            } else {
                web_names[(i as usize) % web_names.len()].clone()
            };
            let svc = registry.deploy(
                ServiceSpec::front_end(format!("analyst-fe-{i:03}"), db_dep, web_dep),
                id,
            );
            fe_service_of.insert(id, svc);
        }

        // Scenario-author extras: site-specific daemons deployed on
        // existing hosts after the standard tiers. The ontology gate
        // below vets whatever topology these create.
        for (hostname, spec) in &cfg.extra_services {
            let id = *host_ids
                .get(hostname)
                .expect("extra_services names a host allocated by the standard tiers");
            registry.deploy(spec.clone(), id);
        }

        // Admin HA pair (kept off the fault-target lists, as dedicated
        // coordinators; the ABL harness can still crash them directly).
        let admin_primary = alloc(
            &mut servers,
            &mut host_ids,
            "admin-1".into(),
            ServerModel::SunE450,
        );
        let admin_standby = alloc(
            &mut servers,
            &mut host_ids,
            "admin-2".into(),
            ServerModel::SunE450,
        );
        let admin = AdminPair::new(admin_primary, admin_standby);

        // Fabric: one private agent LAN, two public LANs; every host on
        // the private LAN and on public LAN (round-robin across the two).
        let mut fabric = Fabric::new();
        let private_seg = fabric.add_segment(SegmentKind::PrivateAgent, SimTime::ZERO);
        let pub1 = fabric.add_segment(SegmentKind::Public, SimTime::ZERO);
        let pub2 = fabric.add_segment(SegmentKind::Public, SimTime::ZERO);
        for (i, &sid) in servers.keys().collect::<Vec<_>>().iter().enumerate() {
            fabric.attach(*sid, private_seg);
            fabric.attach(*sid, if i % 2 == 0 { pub1 } else { pub2 });
            // Admin servers sit on both public LANs.
            if *sid == admin_primary || *sid == admin_standby {
                fabric.attach(*sid, pub1);
                fabric.attach(*sid, pub2);
            }
        }

        // Tapes.
        let mut injector = FaultInjector::new(cfg.fault_rates, SimRng::stream(seed, "faults"));
        let fault_tape = injector.generate_tape(cfg.horizon);
        let mut workload_gen =
            WorkloadGenerator::new(cfg.workload.clone(), SimRng::stream(seed, "workload"));
        let workload_tape = workload_gen.generate_tape(cfg.horizon);

        // Distributed apps for the dummy-transaction probe: front-end
        // chains (db → web → fe), a handful is representative.
        let mut apps = Vec::new();
        for (i, (&_fe_host, &fe_svc)) in fe_service_of.iter().enumerate().take(5) {
            let fe = registry.get(fe_svc).expect("fe exists");
            let mut chain = Vec::new();
            for dep in &fe.spec.depends_on {
                if let Some(d) = registry.by_name(dep) {
                    chain.push(d.id);
                }
            }
            chain.push(fe_svc);
            apps.push(DistributedApp::new(format!("analytics-{i}"), chain));
        }

        // SLKT-expected process names per server (for the OS agent's
        // suspect-process screening).
        let mut expected_procs_of: BTreeMap<ServerId, Vec<String>> = BTreeMap::new();
        for svc in registry.iter() {
            let e = expected_procs_of.entry(svc.server).or_default();
            for p in &svc.spec.processes {
                e.push(p.name.clone());
            }
        }

        let lsf = LsfCluster::new(db_hosts.clone(), cfg.job_limit_per_server);
        let dgspl_selector = DgsplSelector::new(
            Dgspl {
                generated_at_secs: 0,
                entries: vec![],
            },
            host_ids.clone(),
            "db-", // prefix: covers both database engines
        );

        let cron_enabled = servers.keys().map(|&s| (s, true)).collect();

        let mut world = World {
            manual_selector: ManualStickySelector::new(SimRng::stream(seed, "manual-select")),
            random_selector: RandomSelector::new(SimRng::stream(seed, "random-select")),
            dgspl_selector,
            detection: HumanDetectionModel::default(),
            repair_model: ManualRepairModel::default(),
            rng_probe: SimRng::stream(seed, "probe"),
            rng_crash: SimRng::stream(seed, "crash"),
            rng_detect: SimRng::stream(seed, "detect"),
            rng_repair: SimRng::stream(seed, "repair"),
            rng_target: SimRng::stream(seed, "target"),
            slo: SloTracker::new(cfg.slo.clone(), servers.len() as u64),
            cfg,
            servers,
            fabric,
            registry,
            lsf,
            bus: NotificationBus::new(),
            ledger: DowntimeLedger::new(),
            admin,
            db_crash_count: 0,
            trace: Trace::disabled(),
            metrics: MetricsRegistry::disabled(),
            profiler: Profiler::disabled(),
            queue: EventQueue::new(),
            fault_tape,
            workload_tape,
            open_faults: Vec::new(),
            open_by_service: BTreeMap::new(),
            perf: BTreeMap::new(),
            active_breaches: BTreeSet::new(),
            cron_enabled,
            job_tokens: BTreeMap::new(),
            db_hosts,
            tx_hosts,
            fe_hosts,
            db_service_of,
            expected_procs_of,
            lsf_master_service,
            lsf_master_host,
            apps,
            private_seg,
            public_segs: vec![pub1, pub2],
        };
        world.install_ontologies();
        let mut diags = world.slo_declaration_diagnostics();
        diags.extend(world.ontology_diagnostics());
        if !diags.is_empty() {
            return Err(OntologyError { diags });
        }
        world.bring_up_services();
        world.schedule_tapes();
        Ok(world)
    }

    /// Validate the scenario's declared SLO objectives: targets must
    /// lie strictly inside `(0, 1)`, the burn window and threshold must
    /// be positive, per-service keys must be unique, and every key must
    /// resolve to a deployed service name, an allocated hostname, or a
    /// known infrastructure domain — a typo'd key would silently report
    /// against the default target forever, so it refuses construction
    /// instead, through the same diagnostic path as the ontology gate.
    pub fn slo_declaration_diagnostics(&self) -> Vec<Diagnostic> {
        // Domains the ledger charges without a host or service: segment
        // outages ("network") and unattributed site-wide incidents.
        const DOMAINS: [&str; 2] = ["network", "site"];
        let slo = self.slo.config();
        let mut diags = Vec::new();
        let mut err = |rule: &'static str, location: String, message: String, hint: &str| {
            diags.push(Diagnostic {
                rule,
                severity: Severity::Error,
                location,
                line: 0,
                col: 0,
                message,
                hint: hint.to_string(),
            });
        };
        let check_target = |t: f64| t.is_finite() && t > 0.0 && t < 1.0;
        if !check_target(slo.availability_target) {
            err(
                "slo-target",
                "slo://default".to_string(),
                format!(
                    "scenario availability target {} is not in (0, 1)",
                    slo.availability_target
                ),
                "declare a fractional availability like 0.9999",
            );
        }
        if slo.window.as_secs() == 0 {
            err(
                "slo-window",
                "slo://default".to_string(),
                "burn window is zero".to_string(),
                "a zero-length window gives every incident an infinite burn rate",
            );
        }
        if !(slo.burn_threshold.is_finite() && slo.burn_threshold > 0.0) {
            err(
                "slo-threshold",
                "slo://default".to_string(),
                format!("burn threshold {} is not positive", slo.burn_threshold),
                "declare a positive burn-rate multiple like 100.0",
            );
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (key, target) in &slo.service_targets {
            let loc = format!("slo://{key}");
            if !seen.insert(key.as_str()) {
                err(
                    "slo-duplicate-key",
                    loc.clone(),
                    format!("service target for {key} declared more than once"),
                    "each service key may carry one target",
                );
            }
            if !check_target(*target) {
                err(
                    "slo-target",
                    loc.clone(),
                    format!("availability target {target} for {key} is not in (0, 1)"),
                    "declare a fractional availability like 0.9999",
                );
            }
            let resolves = DOMAINS.contains(&key.as_str())
                || self.registry.by_name(key).is_some()
                || self.servers.values().any(|s| s.hostname == *key);
            if !resolves {
                err(
                    "slo-unknown-key",
                    loc,
                    format!("{key} names no deployed service, host, or domain"),
                    "use a service name (trades-db-000), a hostname (db000), \
                     or an infrastructure domain (network, site)",
                );
            }
        }
        diags
    }

    /// Run the qoslint ontology pass over this world's materialised
    /// site ontology: the per-server SLKTs, the ISSL chunks, and the
    /// current DGSPL (skipped until the first regeneration — an empty
    /// DGSPL is the documented pre-boot state, not a violation). Empty
    /// result = valid site.
    pub fn ontology_diagnostics(&self) -> Vec<Diagnostic> {
        let slkts: Vec<_> = self
            .servers
            .values()
            .map(|s| ontogen::generate_slkt(s, &self.registry))
            .collect();
        let issls = ontogen::generate_issls(self.servers.values(), &self.registry);
        let dgspl = self.dgspl_selector.current();
        check_site(&SiteOntology {
            slkts: &slkts,
            issls: &issls,
            dgspl: (!dgspl.entries.is_empty()).then_some(dgspl),
        })
    }

    /// Materialise the static ontologies at install time: per-server
    /// SLKTs on local disks, ISSL chunks in the admin shared pool, and
    /// one OS-group performance collector per monitored server.
    fn install_ontologies(&mut self) {
        let ids: Vec<ServerId> = self.servers.keys().copied().collect();
        for sid in &ids {
            let server = self.servers.get_mut(sid).expect("server exists");
            ontogen::install_slkt(server, &self.registry);
            self.perf.insert(
                *sid,
                PerfCollector::new(
                    server.hostname.clone(),
                    MetricGroup::OperatingSystem,
                    ConstraintStore::os_baselines(),
                    96, // 24 h of 15-minute samples in the circular file
                ),
            );
        }
        let issls = ontogen::generate_issls(self.servers.values(), &self.registry);
        for (k, issl) in issls.iter().enumerate() {
            let _ = self.admin.shared_pool.write(
                format!("/pool/issl/issl_{k}.issl"),
                issl.to_doc().to_lines(),
                SimTime::ZERO,
            );
        }
    }

    /// Start every service in dependency order at t = 0 and schedule
    /// their readiness events.
    fn bring_up_services(&mut self) {
        // Three passes handle the (≤2-deep) dependency chains.
        for _pass in 0..3 {
            let ids: Vec<ServiceId> = self.registry.iter().map(|s| s.id).collect();
            for id in ids {
                let svc = self.registry.get(id).expect("id exists");
                if svc.status != ServiceStatus::Stopped {
                    continue;
                }
                if self.registry.dependencies_satisfied(id).is_err() {
                    continue;
                }
                let server_id = self.registry.get(id).expect("id exists").server;
                let server = self.servers.get_mut(&server_id).expect("server exists");
                if let Ok(ready) = self.registry.start(id, server, SimTime::ZERO) {
                    self.queue.schedule(ready, WorldEvent::ServiceReady(id));
                }
            }
            // Dependencies only become satisfiable once the previous
            // pass's services are Running; fast-forward the pending
            // starts so the next pass can proceed (the ready events we
            // scheduled remain authoritative for the simulation). The
            // window must exceed the longest startup sequence (database
            // crash recovery, ~27 min).
            self.registry
                .complete_pending_starts(SimTime::from_mins(60));
        }
        self.sync_lsf_master();
    }

    fn schedule_tapes(&mut self) {
        for i in 0..self.workload_tape.len() {
            let at = self.workload_tape[i].at;
            self.queue.schedule(at, WorldEvent::SubmitArrival(i));
        }
        for i in 0..self.fault_tape.len() {
            let at = self.fault_tape[i].at;
            self.queue.schedule(at, WorldEvent::InjectFault(i));
        }
        self.queue.schedule(
            SimTime::ZERO + self.cfg.crash_sweep_period,
            WorldEvent::CrashSweep,
        );
        if self.cfg.mode == ManagementMode::Intelliagents {
            self.queue.schedule(
                SimTime::ZERO + self.cfg.agent_period,
                WorldEvent::AgentSweep,
            );
            self.queue.schedule(
                SimTime::ZERO + self.cfg.admin_period,
                WorldEvent::AdminSweep,
            );
            self.queue.schedule(
                SimTime::ZERO + self.cfg.dgspl_period,
                WorldEvent::DgsplRegen,
            );
            self.queue
                .schedule(SimTime::ZERO + self.cfg.e2e_period, WorldEvent::E2eSweep);
            self.queue
                .schedule(SimTime::ZERO + self.cfg.perf_period, WorldEvent::PerfSweep);
        }
    }

    /// Run to the configured horizon and produce the report.
    pub fn run(mut self) -> ScenarioReport {
        self.run_to_end()
    }

    /// Run to the configured horizon in place and produce the report;
    /// the world (ledger, trace, servers) stays inspectable afterwards.
    pub fn run_to_end(&mut self) -> ScenarioReport {
        let horizon = SimTime::ZERO + self.cfg.horizon;
        let (seed, mode) = (self.cfg.seed, self.cfg.mode);
        self.trace
            .emit(self.queue.now(), Subsystem::Kernel, "run-start", || {
                format!("seed={seed} mode={mode:?} horizon={}s", horizon.as_secs())
            });
        // Record which failure classes burn budget this run, so a
        // replayed trace is self-describing about its SLO regime.
        let slo_cfg = self.slo.config();
        let (scope, targets) = (slo_cfg.burn_scope, slo_cfg.service_targets.len());
        self.trace
            .emit(self.queue.now(), Subsystem::Slo, "burn-scope", || {
                format!("scope={scope} service_targets={targets}")
            });
        let run_timer = self.profiler.start();
        let mut processed: u64 = 0;
        while let Some((now, ev)) = self.queue.pop_until(horizon) {
            self.handle(ev, now);
            processed += 1;
        }
        self.profiler.record("run.total", run_timer);
        self.metrics.add("events.processed", processed);
        self.metrics
            .set_gauge("sim.horizon-secs", horizon.as_secs() as f64);
        let open = self.ledger.open_incidents().len();
        self.trace.emit(horizon, Subsystem::Kernel, "run-end", || {
            format!("open_incidents={open}")
        });
        // Flight-recorder discipline: a spill sink must not lose its
        // pending record or manifest because the run ended.
        if let Err(e) = self.trace.flush() {
            self.metrics.inc("trace.flush-errors");
            eprintln!("trace flush failed: {e}");
        }
        self.report(horizon)
    }

    /// Switch on structured tracing (before running) and return `self`
    /// for chaining.
    pub fn enable_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Switch on structured tracing with explicit options — custom ring
    /// capacity, per-subsystem rings, a spill-to-disk sink, or a
    /// subsystem filter — and return `self` for chaining.
    pub fn enable_trace_with(mut self, opts: TraceOptions) -> Self {
        self.trace = Trace::with_options(opts);
        self
    }

    /// Switch on the metrics registry and wall-clock profiler (before
    /// running) and return `self` for chaining. A profiled
    /// [`run_to_end`](World::run_to_end) then carries per-event-kind
    /// counts/latencies, per-sweep-category timing, and subsystem time
    /// shares, exported via `core::export`.
    pub fn enable_profile(mut self) -> Self {
        self.metrics = MetricsRegistry::enabled();
        self.profiler = Profiler::enabled();
        self
    }

    /// Advance the world up to `deadline` only (for tests and staged
    /// experiments); the world remains usable afterwards.
    pub fn run_until(&mut self, deadline: SimTime) {
        let run_timer = self.profiler.start();
        let mut processed: u64 = 0;
        while let Some((now, ev)) = self.queue.pop_until(deadline) {
            self.handle(ev, now);
            processed += 1;
        }
        self.profiler.record("run.total", run_timer);
        self.metrics.add("events.processed", processed);
        self.queue.advance_clock(deadline);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The exogenous fault tape (fixed at build time; identical across
    /// management modes for the same seed — the paired-run invariant).
    pub fn fault_tape(&self) -> &[FaultEvent] {
        &self.fault_tape
    }

    /// The analyst workload tape (fixed at build time).
    pub fn workload_tape(&self) -> &[Arrival] {
        &self.workload_tape
    }

    /// Produce the report at `horizon`.
    pub fn report(&self, _horizon: SimTime) -> ScenarioReport {
        let categories = self.ledger.totals();
        ScenarioReport {
            mode: self.cfg.mode,
            downtime_hours: self.ledger.figure2_rows(),
            total_downtime_hours: self.ledger.total_downtime_hours(),
            incidents: categories.values().map(|t| t.incidents).sum(),
            categories,
            lsf: self.lsf.stats(),
            db_crashes: self.db_crash_count,
            notifications: self.bus.log().len(),
            open_incidents: self.ledger.open_incidents().len(),
            threshold_breaches: self.perf.values().map(|c| c.breaches().len() as u64).sum(),
        }
    }

    // ---------------------------------------------------------------
    // Event handling
    // ---------------------------------------------------------------

    fn handle(&mut self, ev: WorldEvent, now: SimTime) {
        let kind = ev.kind();
        self.metrics.inc(kind);
        let t = self.profiler.start();
        self.dispatch_event(ev, now);
        self.profiler.record(kind, t);
    }

    fn dispatch_event(&mut self, ev: WorldEvent, now: SimTime) {
        match ev {
            WorldEvent::SubmitArrival(i) => {
                let spec = self.workload_tape[i].spec.clone();
                let job = self.lsf.submit(spec, now);
                self.trace.emit(now, Subsystem::Workload, "submit", || {
                    format!("tape={i} job={job:?}")
                });
                self.try_dispatch(now);
            }
            WorldEvent::JobDone(id) => {
                self.job_tokens.remove(&id);
                self.lsf.complete(id, &mut self.servers, now);
                self.trace
                    .emit(now, Subsystem::Lsf, "done", || format!("job={id:?}"));
                self.try_dispatch(now);
            }
            WorldEvent::CrashSweep => self.on_crash_sweep(now),
            WorldEvent::InjectFault(i) => {
                let fault = self.fault_tape[i];
                self.on_fault(fault, now);
            }
            WorldEvent::AgentSweep => self.on_agent_sweep(now),
            WorldEvent::AdminSweep => self.on_admin_sweep(now),
            WorldEvent::DgsplRegen => self.on_dgspl_regen(now),
            WorldEvent::E2eSweep => self.on_e2e_sweep(now),
            WorldEvent::PerfSweep => self.on_perf_sweep(now),
            WorldEvent::ManualRestore(inc) => self.on_manual_restore(inc, now),
            WorldEvent::ServiceReady(svc) => self.on_service_ready(svc, now),
            WorldEvent::RebootDone(sid) => self.on_reboot_done(sid, now),
        }
    }

    fn db_serving_map(&self) -> BTreeMap<ServerId, bool> {
        self.db_hosts
            .iter()
            .map(|&sid| {
                let ok = self
                    .db_service_of
                    .get(&sid)
                    .and_then(|id| self.registry.get(*id))
                    .map(|s| s.status.is_serving())
                    .unwrap_or(false);
                (sid, ok)
            })
            .collect()
    }

    fn try_dispatch(&mut self, now: SimTime) {
        if self.lsf.pending_count() == 0 {
            return;
        }
        let t = self.profiler.start();
        let db_serving = self.db_serving_map();
        let mut selector = WorldSelector {
            manual: &mut self.manual_selector,
            random: &mut self.random_selector,
            dgspl: &mut self.dgspl_selector,
            mode: self.cfg.mode,
            policy: self.cfg.resched,
        };
        let dispatches = self.lsf.dispatch_pending(
            &mut selector,
            &mut self.servers,
            |sid| db_serving.get(&sid).copied().unwrap_or(false),
            now,
        );
        self.metrics.add("lsf.dispatched", dispatches.len() as u64);
        for d in dispatches {
            let tok = self
                .queue
                .schedule(d.expected_end, WorldEvent::JobDone(d.job));
            self.job_tokens.insert(d.job, tok);
            self.trace.emit(now, Subsystem::Lsf, "dispatch", || {
                format!(
                    "job={:?} server={} ends={}",
                    d.job,
                    d.server,
                    d.expected_end.as_secs()
                )
            });
        }
        self.profiler.record("lsf.dispatch", t);
    }

    /// Effective repair capability under the configured mode and parts.
    fn repair_power(&self) -> RepairPower {
        if self.cfg.mode == ManagementMode::ManualOps {
            return RepairPower::Blind;
        }
        let p = self.cfg.agent_parts;
        if !p.monitoring || !p.diagnosing {
            RepairPower::Blind
        } else if !p.healing {
            RepairPower::DetectOnly
        } else {
            RepairPower::Full
        }
    }

    /// Schedule the human pipeline for a fault the agents cannot (or are
    /// not allowed to) heal, with detection depending on capability.
    fn schedule_fallback_repair(
        &mut self,
        inc: IncidentId,
        now: SimTime,
        cat: FaultCategory,
        latent: bool,
        complexity: Complexity,
    ) {
        match self.repair_power() {
            RepairPower::Full => {} // agents will heal it
            RepairPower::DetectOnly => {
                let detected = self.next_sweep(now);
                self.schedule_manual_repair(inc, now, cat, false, complexity, Some(detected));
            }
            RepairPower::Blind => {
                self.schedule_manual_repair(inc, now, cat, latent, complexity, None);
            }
        }
    }

    fn sync_lsf_master(&mut self) {
        self.lsf.master_up = self
            .registry
            .get(self.lsf_master_service)
            .map(|s| s.status.is_serving())
            .unwrap_or(false);
    }

    fn cancel_job_events(&mut self, jobs: &[JobId]) {
        for j in jobs {
            if let Some(tok) = self.job_tokens.remove(j) {
                self.queue.cancel(tok);
            }
        }
    }

    // -- endogenous database crashes ---------------------------------

    fn on_crash_sweep(&mut self, now: SimTime) {
        let hosts = self.db_hosts.clone();
        for sid in hosts {
            let up = self.servers.get(&sid).map(|s| s.is_up()).unwrap_or(false);
            if !up || self.lsf.running_on(sid).is_empty() {
                continue;
            }
            let svc = self.db_service_of[&sid];
            if !self
                .registry
                .get(svc)
                .map(|s| s.status.is_serving())
                .unwrap_or(false)
            {
                continue;
            }
            let u = self.servers[&sid].cpu_utilization();
            if db_crash_roll(u, self.cfg.crash_sweep_period, &mut self.rng_crash) {
                self.db_crash(sid, now);
            }
        }
        self.queue
            .schedule(now + self.cfg.crash_sweep_period, WorldEvent::CrashSweep);
    }

    fn db_crash(&mut self, sid: ServerId, now: SimTime) {
        self.db_crash_count += 1;
        self.metrics.inc("faults.db-crash");
        let svc = self.db_service_of[&sid];
        {
            let server = self.servers.get_mut(&sid).expect("db host exists");
            self.registry
                .get_mut(svc)
                .expect("db svc exists")
                .crash(server);
        }
        let failed = self
            .lsf
            .fail_all_on(sid, FailReason::DbCrash, &mut self.servers, now);
        self.cancel_job_events(&failed);
        self.sync_lsf_master();
        // One incident per crash (unless one is already open).
        if self.open_by_service.contains_key(&svc) {
            return;
        }
        let inc = self.ledger.open_scoped(
            FaultCategory::MidJobDbCrash,
            self.slo_key_service(svc),
            format!(
                "database on {sid} crashed mid-job ({} jobs lost)",
                failed.len()
            ),
            now,
        );
        let lost = failed.len();
        self.trace
            .emit_corr(now, Subsystem::Fault, "db-crash", Some(inc.0), || {
                format!("inc={inc} server={sid} jobs_lost={lost}")
            });
        self.open_by_service.insert(svc, (inc, false));
        self.open_faults.push(OpenFault {
            incident: inc,
            mechanism: FaultMechanism::ServiceBug, // placeholder; endogenous
            server: Some(sid),
            undo: Undo::RestartService(svc),
        });
        // Full agents restart it at the next sweep; anything less falls
        // back to humans (overnight/weekend crashes sit unseen under the
        // console-watch detection windows).
        self.schedule_fallback_repair(
            inc,
            now,
            FaultCategory::MidJobDbCrash,
            false,
            Complexity::Simple,
        );
    }

    // -- exogenous fault injection ------------------------------------

    fn pick_target(&mut self, class: TargetClass) -> Option<ServerId> {
        let pool: &[ServerId] = match class {
            TargetClass::DbServer => &self.db_hosts,
            TargetClass::TxServer => &self.tx_hosts,
            TargetClass::FrontEndServer => &self.fe_hosts,
            TargetClass::LsfMaster => return Some(self.lsf_master_host),
            TargetClass::AnyServer => {
                // One draw over the union, weighted by tier sizes.
                let total = self.db_hosts.len() + self.tx_hosts.len() + self.fe_hosts.len();
                let k = self.rng_target.index(total.max(1));
                return Some(if k < self.db_hosts.len() {
                    self.db_hosts[k]
                } else if k < self.db_hosts.len() + self.tx_hosts.len() {
                    self.tx_hosts[k - self.db_hosts.len()]
                } else {
                    self.fe_hosts[k - self.db_hosts.len() - self.tx_hosts.len()]
                });
            }
            TargetClass::Network => return None,
        };
        if pool.is_empty() {
            return None;
        }
        let k = self.rng_target.index(pool.len());
        Some(pool[k])
    }

    /// Sample the year-1 detection delay for a category: operators on
    /// shift notice user-facing breakage fast; the long console windows
    /// (1 h day / 10 h overnight / 25 h weekend) dominate only for the
    /// unattended batch/database path. Human errors are noticed quickly
    /// because the human who made them is standing right there.
    fn manual_detection_delay(
        &mut self,
        cat: FaultCategory,
        onset: SimTime,
        latent: bool,
    ) -> SimDuration {
        let escalation = if latent {
            self.detection.latent_escalation_delay(&mut self.rng_detect)
        } else {
            SimDuration::ZERO
        };
        let visible = onset + escalation;
        let base = match cat {
            FaultCategory::MidJobDbCrash => {
                self.detection.sample_delay(visible, &mut self.rng_detect)
            }
            FaultCategory::HumanError => {
                // The person who made the mistake is on site and the
                // breakage is immediate — latency is minutes.
                return SimDuration::from_secs_f64(
                    self.rng_detect
                        .lognormal_median(10.0 * 60.0, 0.5)
                        .max(120.0),
                );
            }
            FaultCategory::FrontEndError | FaultCategory::LsfError => {
                if visible.is_business_hours() {
                    SimDuration::from_secs_f64(
                        self.rng_detect
                            .lognormal_median(20.0 * 60.0, 0.5)
                            .max(120.0),
                    )
                } else {
                    SimDuration::from_secs_f64(
                        self.rng_detect
                            .lognormal_median(2.0 * 3600.0, 0.5)
                            .max(300.0),
                    )
                }
            }
            FaultCategory::Hardware => SimDuration::from_secs_f64(
                self.rng_detect
                    .lognormal_median(30.0 * 60.0, 0.5)
                    .max(120.0),
            ),
            FaultCategory::PerformanceError => SimDuration::from_secs_f64(
                self.rng_detect
                    .lognormal_median(45.0 * 60.0, 0.5)
                    .max(300.0),
            ),
            _ => {
                SimDuration::from_secs_f64(self.rng_detect.lognormal_median(3600.0, 0.5).max(300.0))
            }
        };
        escalation + base
    }

    /// Schedule the human pipeline for an incident: detection (unless an
    /// agent already detected — pass `detected_at`), paging, repair.
    fn schedule_manual_repair(
        &mut self,
        inc: IncidentId,
        onset: SimTime,
        cat: FaultCategory,
        latent: bool,
        complexity: Complexity,
        detected_at: Option<SimTime>,
    ) {
        let detected = match detected_at {
            Some(t) => t,
            None => onset + self.manual_detection_delay(cat, onset, latent),
        };
        self.ledger.detect(inc, detected);
        let engaged = detected
            + self
                .repair_model
                .sample_paging(detected, &mut self.rng_repair);
        // Humans pin the cause down when they engage; paging is the
        // escalation record. Transitions are issued in automaton order
        // (detect, diagnose, attempt, escalate) — the lifecycle-order
        // lint checks this sequence against the declared automaton.
        self.ledger.diagnose(inc, engaged);
        if detected_at.is_some() {
            // An agent found the fault but could not (or was not allowed
            // to) heal it: record the failed agent try before the human
            // escalation so the attempt history shows both actors.
            self.ledger
                .attempt(inc, detected, Actor::Agent, "detect-and-page");
        }
        self.ledger.escalate(inc, detected);
        let restored = engaged
            + self
                .repair_model
                .sample_repair(complexity, &mut self.rng_repair);
        self.queue
            .schedule(restored, WorldEvent::ManualRestore(inc));
        self.trace
            .emit_corr(onset, Subsystem::Manual, "pipeline", Some(inc.0), || {
                format!(
                    "inc={inc} cat={cat:?} detect={} engage={} restore={}",
                    detected.as_secs(),
                    engaged.as_secs(),
                    restored.as_secs()
                )
            });
    }

    /// Time of the next agent sweep strictly after `now`.
    fn next_sweep(&self, now: SimTime) -> SimTime {
        let p = self.cfg.agent_period.as_secs();
        SimTime::from_secs((now.as_secs() / p + 1) * p)
    }

    fn on_fault(&mut self, fault: FaultEvent, now: SimTime) {
        use FaultMechanism::*;
        self.metrics.inc("faults.injected");
        let cat = fault.mechanism.category();
        let agents = self.cfg.mode == ManagementMode::Intelliagents;
        // Resolve the target with exactly one draw so both modes stay
        // tape-aligned.
        let target = self.pick_target(fault.target);
        self.trace.emit(now, Subsystem::Fault, "inject", || {
            format!(
                "mech={:?} cat={cat:?} target={} latent={}",
                fault.mechanism,
                target.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                fault.latent
            )
        });

        // Helper closures cannot borrow self mutably twice; work inline.
        match fault.mechanism {
            ObscureSlowdown => {
                let Some(sid) = target else { return };
                if !self.servers[&sid].is_up() {
                    return;
                }
                {
                    let server = self.servers.get_mut(&sid).expect("target exists");
                    let cap = server.effective_spec().compute_power();
                    server.external_cpu_demand += cap * 0.3;
                }
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_host(sid),
                    format!("obscure slowdown on {sid}"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::ClearExternalLoad(sid),
                });
                // No single guilty process: agents detect the breach and
                // "suggest what may be wrong" but a human must dig.
                let fast = agents && self.repair_power() != RepairPower::Blind;
                let detected_at = if fast {
                    Some(self.next_sweep(now))
                } else {
                    None
                };
                self.schedule_manual_repair(
                    inc,
                    now,
                    cat,
                    fault.latent && !fast,
                    fault.complexity,
                    detected_at,
                );
            }
            RunawayProcess | MemoryLeak | DiskFill => {
                let Some(sid) = target else { return };
                if !self.servers[&sid].is_up() {
                    return;
                }
                let undo = {
                    let server = self.servers.get_mut(&sid).expect("target exists");
                    match fault.mechanism {
                        RunawayProcess => {
                            let cap = server.effective_spec().compute_power();
                            server.procs.spawn(
                                "runaway",
                                "tight-loop",
                                "app",
                                cap * 1.2,
                                64.0,
                                0.0,
                                now,
                            );
                            Undo::KillProcess(sid, "runaway".into())
                        }
                        MemoryLeak => {
                            let ram = server.effective_spec().ram_gb as f64 * 1024.0;
                            server
                                .procs
                                .spawn("leaky", "grows", "app", 0.2, ram * 0.85, 0.0, now);
                            Undo::KillProcess(sid, "leaky".into())
                        }
                        _ => {
                            // A runaway debug trace fills /logs to ≥92 %.
                            let line = "x".repeat(1 << 16);
                            while server.fs.usage_fraction("/logs").unwrap_or(1.0) < 0.92 {
                                if server
                                    .fs
                                    .append("/logs/app_debug_trace", line.clone(), now)
                                    .is_err()
                                {
                                    break;
                                }
                            }
                            Undo::RotateLogs(sid)
                        }
                    }
                };
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_host(sid),
                    format!("{:?} on {sid}", fault.mechanism),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo,
                });
                self.schedule_fallback_repair(inc, now, cat, fault.latent, fault.complexity);
            }
            DaemonKilled | ConfigCorrupted => {
                let Some(sid) = target else { return };
                if !self.servers[&sid].is_up() {
                    return;
                }
                // Prefer the most important service on the box.
                let Some(svc) = self.service_on(sid) else {
                    return;
                };
                if self.open_by_service.contains_key(&svc) {
                    return;
                }
                if !self
                    .registry
                    .get(svc)
                    .map(|s| s.status.is_serving())
                    .unwrap_or(false)
                {
                    return;
                }
                {
                    let server = self.servers.get_mut(&sid).expect("target exists");
                    let instance = self.registry.get_mut(svc).expect("svc exists");
                    if fault.mechanism == DaemonKilled {
                        instance.crash(server);
                    } else {
                        instance.hang();
                    }
                }
                let failed = self
                    .lsf
                    .fail_all_on(sid, FailReason::DbCrash, &mut self.servers, now);
                self.cancel_job_events(&failed);
                self.sync_lsf_master();
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_service(svc),
                    format!("{:?} on {sid}", fault.mechanism),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_by_service.insert(svc, (inc, false));
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::RestartService(svc),
                });
                self.schedule_fallback_repair(inc, now, cat, fault.latent, fault.complexity);
            }
            CrontabDisabled => {
                let Some(sid) = target else { return };
                if !agents {
                    // Year 1 has no agent crontab; a disabled monitoring
                    // cron is a minor incident found during rounds.
                    let inc = self.ledger.open_scoped(
                        cat,
                        self.slo_key_host(sid),
                        format!("monitoring cron disabled on {sid}"),
                        now,
                    );
                    self.trace.correlate_last(inc.0);
                    self.open_faults.push(OpenFault {
                        incident: inc,
                        mechanism: fault.mechanism,
                        server: Some(sid),
                        undo: Undo::EnableCron(sid),
                    });
                    self.schedule_manual_repair(
                        inc,
                        now,
                        cat,
                        fault.latent,
                        fault.complexity,
                        None,
                    );
                    return;
                }
                self.cron_enabled.insert(sid, false);
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_host(sid),
                    format!("agent crontab disabled on {sid}"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::EnableCron(sid),
                });
                // The admin sweep finds the missing flags and repairs —
                // but only when agents are actually producing flags.
                if self.repair_power() == RepairPower::Blind {
                    self.schedule_manual_repair(
                        inc,
                        now,
                        cat,
                        fault.latent,
                        fault.complexity,
                        None,
                    );
                }
            }
            NtpBroken => {
                let Some(sid) = target else { return };
                if let Some(server) = self.servers.get_mut(&sid) {
                    server.ntp_synced = false;
                }
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_host(sid),
                    format!("NTP broken on {sid}"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::FixNtp(sid),
                });
                self.schedule_fallback_repair(inc, now, cat, fault.latent, fault.complexity);
            }
            FrontEndHang | FrontEndCrash | LsfMasterCrash | LsfQueueStuck | ServiceCorruption
            | ServiceBug => {
                let Some(sid) = target else { return };
                if !self.servers[&sid].is_up() {
                    return;
                }
                let Some(svc) = self.service_on(sid) else {
                    return;
                };
                if self.open_by_service.contains_key(&svc)
                    || !self
                        .registry
                        .get(svc)
                        .map(|s| s.status.is_serving())
                        .unwrap_or(false)
                {
                    return;
                }
                {
                    let server = self.servers.get_mut(&sid).expect("target exists");
                    let instance = self.registry.get_mut(svc).expect("svc exists");
                    match fault.mechanism {
                        FrontEndCrash | LsfMasterCrash => instance.crash(server),
                        ServiceCorruption => instance.corrupt(server),
                        _ => instance.hang(),
                    }
                }
                if matches!(fault.mechanism, LsfMasterCrash | LsfQueueStuck) {
                    self.sync_lsf_master();
                }
                if matches!(fault.mechanism, ServiceCorruption | ServiceBug) {
                    // Databases dying completely also kill their jobs.
                    let failed =
                        self.lsf
                            .fail_all_on(sid, FailReason::DbCrash, &mut self.servers, now);
                    self.cancel_job_events(&failed);
                }
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_service(svc),
                    format!("{:?} on {sid}", fault.mechanism),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_by_service.insert(svc, (inc, false));
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::RestartService(svc),
                });
                self.schedule_fallback_repair(inc, now, cat, fault.latent, fault.complexity);
            }
            FirewallMisrule => {
                let Some(sid) = self.pick_target(TargetClass::AnyServer) else {
                    return;
                };
                let seg = self.public_segs[self.rng_target.index(self.public_segs.len().max(1))];
                self.fabric.set_firewall_block(seg, sid, true);
                let inc = self.ledger.open_scoped(
                    cat,
                    "network".to_string(),
                    format!("firewall rule blocks {sid} on {seg}"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::UnblockFirewall(seg, sid),
                });
                // Not agent-healable: detection fast (agents) or human
                // (manual); repair is always human.
                if agents && self.repair_power() != RepairPower::Blind {
                    let detected = self.next_sweep(now);
                    self.bus.page(
                        detected,
                        format!("{sid}"),
                        "firewall misconfiguration detected",
                        "agents cannot heal network faults; paging network team",
                    );
                    self.schedule_manual_repair(
                        inc,
                        now,
                        cat,
                        fault.latent,
                        fault.complexity,
                        Some(detected),
                    );
                } else {
                    self.schedule_manual_repair(
                        inc,
                        now,
                        cat,
                        fault.latent,
                        fault.complexity,
                        None,
                    );
                }
            }
            SegmentOutage => {
                // The private agent LAN is the dedicated, mostly-idle
                // network — outages there exercise the reroute path.
                let seg = self.private_seg;
                self.fabric.set_segment_up(seg, false);
                let inc = self.ledger.open_scoped(
                    cat,
                    "network".to_string(),
                    format!("segment {seg} down"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: None,
                    undo: Undo::SegmentUp(seg),
                });
                if agents && self.repair_power() != RepairPower::Blind {
                    let detected = self.next_sweep(now);
                    self.bus.page(
                        detected,
                        "admin-1",
                        "private agent LAN down; rerouting over public",
                        "agent traffic rerouted automatically",
                    );
                    self.schedule_manual_repair(
                        inc,
                        now,
                        cat,
                        fault.latent,
                        fault.complexity,
                        Some(detected),
                    );
                } else {
                    self.schedule_manual_repair(
                        inc,
                        now,
                        cat,
                        fault.latent,
                        fault.complexity,
                        None,
                    );
                }
            }
            ComponentDegrade(class) => {
                let Some(sid) = target else { return };
                if !self.servers[&sid].is_up() {
                    return;
                }
                {
                    let server = self.servers.get_mut(&sid).expect("target exists");
                    server.set_component_health(class, 0, ComponentHealth::Degraded);
                }
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_host(sid),
                    format!("{class} degrading on {sid}"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: fault.mechanism,
                    server: Some(sid),
                    undo: Undo::RepairComponent(sid, class),
                });
                let power = self.repair_power();
                if agents && power != RepairPower::Blind {
                    if !class.software_recoverable() || power == RepairPower::DetectOnly {
                        // Agent detects from logs next sweep, pages an
                        // engineer; replacement/offlining is human work.
                        let detected = self.next_sweep(now);
                        self.schedule_manual_repair(
                            inc,
                            now,
                            cat,
                            false,
                            fault.complexity,
                            Some(detected),
                        );
                    }
                    // Recoverable classes with full power: the hardware
                    // agent offlines the part next sweep (closed there).
                } else {
                    // Latent by nature in year 1 — found late.
                    self.schedule_manual_repair(inc, now, cat, true, fault.complexity, None);
                }
            }
            ComponentFail(class) => {
                let Some(sid) = target else { return };
                if !self.servers[&sid].is_up() {
                    return;
                }
                let fatal = {
                    let server = self.servers.get_mut(&sid).expect("target exists");
                    server.set_component_health(class, 0, ComponentHealth::Failed);
                    server.fatal_hardware_fault()
                };
                let inc = self.ledger.open_scoped(
                    cat,
                    self.slo_key_host(sid),
                    format!("{class} failed on {sid}"),
                    now,
                );
                self.trace.correlate_last(inc.0);
                if fatal {
                    // The machine goes down with everything on it.
                    self.servers.get_mut(&sid).expect("target exists").crash();
                    self.registry.on_server_crash(sid);
                    let failed =
                        self.lsf
                            .fail_all_on(sid, FailReason::ServerCrash, &mut self.servers, now);
                    self.cancel_job_events(&failed);
                    self.sync_lsf_master();
                    self.open_faults.push(OpenFault {
                        incident: inc,
                        mechanism: fault.mechanism,
                        server: Some(sid),
                        undo: Undo::ServerRepair(sid),
                    });
                } else {
                    self.open_faults.push(OpenFault {
                        incident: inc,
                        mechanism: fault.mechanism,
                        server: Some(sid),
                        undo: Undo::RepairComponent(sid, class),
                    });
                }
                let fast = agents && self.repair_power() != RepairPower::Blind;
                let detected_at = if fast {
                    Some(self.next_sweep(now))
                } else {
                    None
                };
                self.schedule_manual_repair(
                    inc,
                    now,
                    cat,
                    fault.latent && !fast,
                    fault.complexity,
                    detected_at,
                );
            }
        }
    }

    /// SLO accounting key for a host-scoped incident: the hostname.
    fn slo_key_host(&self, sid: ServerId) -> String {
        self.servers
            .get(&sid)
            .map(|s| s.hostname.clone())
            .unwrap_or_else(|| sid.to_string())
    }

    /// SLO accounting key for a service-scoped incident: the deployed
    /// service's name.
    fn slo_key_service(&self, svc: ServiceId) -> String {
        self.registry
            .get(svc)
            .map(|s| s.spec.name.clone())
            .unwrap_or_else(|| "service".to_string())
    }

    /// Feed one just-closed incident to the online SLO tracker: derive
    /// its failure class from the fault label and repair history, emit
    /// the `classified` trace event, and charge the downtime under that
    /// class — firing the fast-burn `SloAlert` trace event only when an
    /// episode the configured burn scope admits blew the windowed
    /// budget. Call immediately after `ledger.restore`.
    fn slo_observe(&mut self, inc: IncidentId, now: SimTime) {
        let Some(rec) = self.ledger.get(inc) else {
            return;
        };
        let service = rec.service.clone();
        let class = rec.failure_class();
        let (onset, detected) = (rec.onset, rec.detected.unwrap_or(rec.onset));
        self.metrics.inc(match class {
            crate::downtime::FailureClass::ServiceFault => "slo.class.service-fault",
            crate::downtime::FailureClass::ClientWorkload => "slo.class.client-workload",
            crate::downtime::FailureClass::TransientAbort => "slo.class.transient-abort",
        });
        self.trace
            .emit_corr(now, Subsystem::Slo, "classified", Some(inc.0), || {
                format!(
                    "inc={inc} service={service} class={class} actionable={}",
                    class.is_actionable()
                )
            });
        if let Some(alert) = self
            .slo
            .on_close(&service, inc, class, onset, detected, now)
        {
            self.metrics.inc("slo.alerts");
            let burn = alert.burn_rate;
            self.trace
                .emit_corr(now, Subsystem::Slo, "burn-alert", Some(inc.0), || {
                    format!("inc={inc} service={service} burn={burn:.1}")
                });
        }
    }

    /// The primary service hosted on a server (database > front-end >
    /// anything else).
    fn service_on(&self, sid: ServerId) -> Option<ServiceId> {
        if let Some(&svc) = self.db_service_of.get(&sid) {
            return Some(svc);
        }
        let mut ids = self.registry.ids_on_server(sid);
        ids.sort();
        ids.into_iter().next()
    }

    // -- agent sweeps --------------------------------------------------

    fn on_agent_sweep(&mut self, now: SimTime) {
        let hosts: Vec<ServerId> = self.servers.keys().copied().collect();
        for sid in hosts {
            if !self.cron_enabled.get(&sid).copied().unwrap_or(true) {
                continue;
            }
            if !self.servers[&sid].is_up() {
                continue;
            }
            self.metrics.inc("agent.hosts-swept");
            // Service agent.
            let t_service = self.profiler.start();
            let report = {
                let server = self.servers.get_mut(&sid).expect("host exists");
                run_service_agent(
                    server,
                    &mut self.registry,
                    self.cfg.agent_parts,
                    &mut self.bus,
                    &mut self.rng_probe,
                    now,
                )
            };
            for finding in &report.findings {
                if finding.diagnosis.is_none() {
                    continue;
                }
                if let Some((inc, _auto)) = self.open_by_service.get(&finding.service).copied() {
                    self.ledger.detect(inc, now);
                    self.ledger.diagnose(inc, now);
                    let (svc, repairing) = (finding.service, finding.repair_completes.is_some());
                    self.trace
                        .emit_corr(now, Subsystem::Agent, "diagnose", Some(inc.0), || {
                            format!("inc={inc} service={svc:?} repairing={repairing}")
                        });
                    if let Some(ready) = finding.repair_completes {
                        self.open_by_service.insert(finding.service, (inc, true));
                        self.queue
                            .schedule(ready, WorldEvent::ServiceReady(finding.service));
                    }
                } else if let Some(ready) = finding.repair_completes {
                    // Repair of collateral damage without its own
                    // incident (e.g. services felled by a server crash).
                    self.queue
                        .schedule(ready, WorldEvent::ServiceReady(finding.service));
                }
            }
            self.profiler.record("sweep.service", t_service);
            // OS / resource agents run fused over a single fact base, so
            // they are timed as one span.
            let t_osres = self.profiler.start();
            {
                let expected: &[String] = self
                    .expected_procs_of
                    .get(&sid)
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                let server = self.servers.get_mut(&sid).expect("host exists");
                run_os_resource_agents(server, expected, self.cfg.agent_parts, &mut self.bus, now);
            }
            self.profiler.record("sweep.os-resource", t_osres);
            // Hardware agent.
            let t_hw = self.profiler.start();
            {
                let server = self.servers.get_mut(&sid).expect("host exists");
                run_hardware_agent(server, self.cfg.agent_parts, &mut self.bus, now);
            }
            self.profiler.record("sweep.hardware", t_hw);
            // Close any locally-healed open faults on this host by
            // checking that their effect really is gone.
            let t_heal = self.profiler.start();
            self.close_healed_local_faults(sid, now);
            self.profiler.record("sweep.close-healed", t_heal);
        }
        self.queue
            .schedule(now + self.cfg.agent_period, WorldEvent::AgentSweep);
    }

    fn close_healed_local_faults(&mut self, sid: ServerId, now: SimTime) {
        let mut closed = Vec::new();
        for (idx, of) in self.open_faults.iter().enumerate() {
            if of.server != Some(sid) {
                continue;
            }
            let healed = match (&of.mechanism, &of.undo) {
                (FaultMechanism::RunawayProcess, _) => {
                    self.servers[&sid].procs.live_count("runaway") == 0
                }
                (FaultMechanism::MemoryLeak, _) => {
                    self.servers[&sid].procs.live_count("leaky") == 0
                }
                (FaultMechanism::DiskFill, _) => {
                    self.servers[&sid].fs.usage_fraction("/logs").unwrap_or(0.0) < 0.9
                }
                (FaultMechanism::NtpBroken, _) => self.servers[&sid].ntp_synced,
                (FaultMechanism::ComponentDegrade(class), Undo::RepairComponent(_, _))
                    if class.software_recoverable() =>
                {
                    self.servers[&sid].degraded_count(*class) == 0
                }
                _ => false,
            };
            if healed {
                let action = match &of.mechanism {
                    FaultMechanism::RunawayProcess => "kill-runaway",
                    FaultMechanism::MemoryLeak => "kill-leaky",
                    FaultMechanism::DiskFill => "rotate-logs",
                    FaultMechanism::NtpBroken => "fix-ntp",
                    FaultMechanism::ComponentDegrade(_) => "offline-component",
                    _ => "local-heal",
                };
                let inc = of.incident;
                self.ledger.detect(inc, now);
                self.ledger.diagnose(inc, now);
                self.ledger.restore(inc, now, Actor::Agent, action);
                self.trace
                    .emit_corr(now, Subsystem::Agent, "local-heal", Some(inc.0), || {
                        format!("inc={inc} host={sid} action={action}")
                    });
                closed.push((idx, inc));
            }
        }
        for &(idx, _) in closed.iter().rev() {
            self.open_faults.remove(idx);
        }
        for (_, inc) in closed {
            self.slo_observe(inc, now);
        }
    }

    fn on_admin_sweep(&mut self, now: SimTime) {
        if self.admin.acting(&self.servers).is_some() {
            // Flag monitoring: repair disabled agent crontabs.
            let disabled: Vec<ServerId> = self
                .cron_enabled
                .iter()
                .filter(|(_, &on)| !on)
                .map(|(&s, _)| s)
                .collect();
            for sid in disabled {
                self.cron_enabled.insert(sid, true);
                // Close the matching incident.
                if let Some(idx) = self
                    .open_faults
                    .iter()
                    .position(|of| of.undo == Undo::EnableCron(sid))
                {
                    let of = self.open_faults.remove(idx);
                    let inc = of.incident;
                    self.ledger.detect(inc, now);
                    self.ledger.diagnose(inc, now);
                    self.ledger.restore(inc, now, Actor::Admin, "enable-cron");
                    self.trace
                        .emit_corr(now, Subsystem::Admin, "cron-repair", Some(inc.0), || {
                            format!("inc={inc} host={sid}")
                        });
                    self.slo_observe(inc, now);
                }
            }
            // Resubmit failed batch jobs through the DGSPL policy.
            let failed = self.lsf.failed_ids();
            let resubmitted = failed.len();
            self.metrics.add("lsf.resubmitted", resubmitted as u64);
            for id in failed {
                self.lsf.resubmit(id);
            }
            if resubmitted > 0 {
                self.trace.emit(now, Subsystem::Admin, "resubmit", || {
                    format!("jobs={resubmitted}")
                });
            }
            self.sync_lsf_master();
            self.try_dispatch(now);
        }
        self.queue
            .schedule(now + self.cfg.admin_period, WorldEvent::AdminSweep);
    }

    fn on_dgspl_regen(&mut self, now: SimTime) {
        if !self.cfg.agent_parts.monitoring {
            // Status agents are part of the monitoring stage; with it
            // disabled no DLSPs flow and the DGSPL goes stale.
            self.queue
                .schedule(now + self.cfg.dgspl_period, WorldEvent::DgsplRegen);
            return;
        }
        if let Some(admin_host) = self.admin.acting(&self.servers) {
            let hosts: Vec<ServerId> = self.servers.keys().copied().collect();
            for sid in hosts {
                if sid == admin_host || !self.servers[&sid].is_up() {
                    continue;
                }
                if !self.cron_enabled.get(&sid).copied().unwrap_or(true) {
                    continue;
                }
                let t_status = self.profiler.start();
                let dlsp = {
                    let server = self.servers.get_mut(&sid).expect("host exists");
                    run_status_agent(server, &self.registry, &mut self.rng_probe, now)
                };
                self.profiler.record("sweep.status", t_status);
                // Ship over the agent network (private preferred,
                // automatic fallback to public — Figure 1's design).
                // Size estimate: ~140 bytes of host header + ~80 per
                // service row (avoids rendering the document twice).
                let bytes = 140 + 80 * dlsp.services.len() as u64;
                let _ =
                    self.fabric
                        .transmit(sid, admin_host, bytes, SegmentKind::PrivateAgent, now);
                self.admin.ingest_dlsp(dlsp, now);
            }
            let t_gen = self.profiler.start();
            let dgspl =
                self.admin
                    .generate_dgspl(now, self.cfg.dgspl_period.times(2), |model, cpus| {
                        ServerModel::ALL
                            .iter()
                            .find(|m| m.to_string() == model)
                            .map(|m| m.cpu_power() * cpus as f64)
                            .unwrap_or(cpus as f64 * 0.5)
                    });
            self.profiler.record("dgspl.generate", t_gen);
            self.metrics.inc("dgspl.regens");
            let entries = dgspl.entries.len();
            self.metrics.set_gauge("dgspl.entries", entries as f64);
            self.trace.emit(now, Subsystem::Admin, "dgspl", || {
                format!("entries={entries}")
            });
            self.dgspl_selector.update(dgspl);
        }
        self.queue
            .schedule(now + self.cfg.dgspl_period, WorldEvent::DgsplRegen);
    }

    fn on_e2e_sweep(&mut self, now: SimTime) {
        // §3.6: a dummy process walks every application component and
        // measures total response time — failures pinpoint the first
        // broken component, an extra detection channel.
        let apps = self.apps.clone();
        for app in &apps {
            let servers = &self.servers;
            let result = app.end_to_end(
                &self.registry,
                |sid| servers.get(&sid).expect("app server exists"),
                &mut self.rng_probe,
            );
            if let E2eResult::FailedAt { component, .. } = result {
                if let Some((inc, _)) = self.open_by_service.get(&component).copied() {
                    self.ledger.detect(inc, now);
                    self.trace
                        .emit_corr(now, Subsystem::Agent, "e2e-fail", Some(inc.0), || {
                            format!("inc={inc} component={component:?}")
                        });
                }
            }
        }
        self.queue
            .schedule(now + self.cfg.e2e_period, WorldEvent::E2eSweep);
    }

    fn on_perf_sweep(&mut self, now: SimTime) {
        if !self.cfg.agent_parts.monitoring {
            self.queue
                .schedule(now + self.cfg.perf_period, WorldEvent::PerfSweep);
            return;
        }
        let t_perf = self.profiler.start();
        let hosts: Vec<ServerId> = self.perf.keys().copied().collect();
        for sid in hosts {
            if !self.cron_enabled.get(&sid).copied().unwrap_or(true) {
                continue;
            }
            let Some(obs) = self
                .servers
                .get(&sid)
                .and_then(|s| s.observe(&mut self.rng_probe))
            else {
                continue;
            };
            let snapshot = os_metrics(&obs);
            let breached: BTreeSet<String> = {
                let server = self.servers.get_mut(&sid).expect("host exists");
                let collector = self.perf.get_mut(&sid).expect("collector exists");
                let breaches = collector.ingest(&snapshot, server, now);
                let _ = crate::flags::write_flag(
                    &mut server.fs,
                    crate::agents::AgentKind::Performance.name(),
                    if breaches.is_empty() {
                        crate::flags::FlagOutcome::Ok
                    } else {
                        crate::flags::FlagOutcome::FaultDetected
                    },
                    None,
                    now,
                );
                breaches.into_iter().map(|b| b.violation.var).collect()
            };
            // Notify only on breach *transitions* — a saturated host must
            // not page every fifteen minutes (§3.5's "every time a
            // threshold was exceeded they notified us" is per episode).
            for var in &breached {
                if self.active_breaches.insert((sid, var.clone()))
                    && self.cfg.agent_parts.communication
                {
                    let hostname = self.servers[&sid].hostname.clone();
                    self.bus.send(
                        now,
                        crate::notify::Channel::Email,
                        crate::notify::Severity::Warning,
                        hostname,
                        format!("threshold breach: {var}"),
                        format!("value outside baseline bounds at {now}"),
                    );
                }
            }
            self.active_breaches
                .retain(|(s, v)| *s != sid || breached.contains(v));
        }
        self.profiler.record("sweep.performance", t_perf);
        self.queue
            .schedule(now + self.cfg.perf_period, WorldEvent::PerfSweep);
    }

    // -- repair completion ---------------------------------------------

    /// Close `inc` as a human repair and emit the matching trace line.
    fn close_human(&mut self, inc: IncidentId, now: SimTime, action: &str) {
        self.ledger.restore(inc, now, Actor::Human, action);
        let action = action.to_string();
        self.trace
            .emit_corr(now, Subsystem::Manual, "restore", Some(inc.0), || {
                format!("inc={inc} action={action}")
            });
        self.slo_observe(inc, now);
    }

    fn on_manual_restore(&mut self, inc: IncidentId, now: SimTime) {
        let Some(idx) = self.open_faults.iter().position(|of| of.incident == inc) else {
            return; // already healed by an agent
        };
        let of = self.open_faults.remove(idx);
        match of.undo {
            Undo::RestartService(svc) => {
                let (server_id, needs_restore, hung) = match self.registry.get(svc) {
                    Some(s) => (
                        s.server,
                        s.status == ServiceStatus::Corrupted,
                        s.status == ServiceStatus::Hung,
                    ),
                    None => {
                        self.close_human(inc, now, "restart-service");
                        return;
                    }
                };
                let server_up = self
                    .servers
                    .get(&server_id)
                    .map(|s| s.is_up())
                    .unwrap_or(false);
                if server_up {
                    let server = self.servers.get_mut(&server_id).expect("server exists");
                    let instance = self.registry.get_mut(svc).expect("svc exists");
                    if needs_restore {
                        instance.restore();
                    }
                    if hung {
                        instance.stop(server);
                    }
                    match instance.start(server, now) {
                        Ok(ready) => {
                            self.queue.schedule(ready, WorldEvent::ServiceReady(svc));
                            // Incident closes at ServiceReady (auto=false).
                            self.open_by_service.insert(svc, (inc, false));
                            // Analysts resubmit their failed jobs once the
                            // database is back (manual mode only; agents
                            // resubmit from the admin sweep).
                            if self.cfg.mode == ManagementMode::ManualOps {
                                for id in self.lsf.failed_ids() {
                                    self.lsf.resubmit(id);
                                }
                            }
                            return; // don't close yet
                        }
                        Err(_) => {
                            self.close_human(inc, now, "restart-service");
                            self.open_by_service.remove(&svc);
                        }
                    }
                } else {
                    // Server itself is down (separate incident); this one
                    // closes administratively.
                    self.close_human(inc, now, "restart-service");
                    self.open_by_service.remove(&svc);
                }
            }
            Undo::KillProcess(sid, ref name) => {
                if let Some(server) = self.servers.get_mut(&sid) {
                    let pids: Vec<_> = server.procs.by_name(name).map(|p| p.pid).collect();
                    for pid in pids {
                        server.procs.kill(pid);
                    }
                }
                let action = format!("kill {name}");
                self.close_human(inc, now, &action);
            }
            Undo::RotateLogs(sid) => {
                if let Some(server) = self.servers.get_mut(&sid) {
                    let victims: Vec<String> = server
                        .fs
                        .list("/logs")
                        .into_iter()
                        .filter(|p| {
                            !p.starts_with("/logs/intelliagents") && !p.starts_with("/logs/perf")
                        })
                        .map(|s| s.to_string())
                        .collect();
                    for v in victims {
                        let _ = server.fs.remove(&v);
                    }
                }
                self.close_human(inc, now, "rotate-logs");
            }
            Undo::ClearExternalLoad(sid) => {
                if let Some(server) = self.servers.get_mut(&sid) {
                    server.external_cpu_demand = 0.0;
                    server.external_mem_gb = 0.0;
                    server.external_io_demand = 0.0;
                }
                self.close_human(inc, now, "clear-external-load");
            }
            Undo::FixNtp(sid) => {
                if let Some(server) = self.servers.get_mut(&sid) {
                    server.ntp_synced = true;
                }
                self.close_human(inc, now, "fix-ntp");
            }
            Undo::EnableCron(sid) => {
                self.cron_enabled.insert(sid, true);
                self.close_human(inc, now, "enable-cron");
            }
            Undo::UnblockFirewall(seg, sid) => {
                self.fabric.set_firewall_block(seg, sid, false);
                self.close_human(inc, now, "unblock-firewall");
            }
            Undo::SegmentUp(seg) => {
                self.fabric.set_segment_up(seg, true);
                self.close_human(inc, now, "segment-up");
            }
            Undo::RepairComponent(sid, class) => {
                if let Some(server) = self.servers.get_mut(&sid) {
                    let n = server.components(class).len();
                    for i in 0..n {
                        server.set_component_health(class, i, ComponentHealth::Healthy);
                    }
                }
                self.close_human(inc, now, "replace-component");
            }
            Undo::ServerRepair(sid) => {
                // Engineer replaced the part; machine reboots now.
                let until = {
                    let server = self.servers.get_mut(&sid).expect("server exists");
                    let n_boards = server.components(HardwareComponent::Board).len();
                    for i in 0..n_boards {
                        server.set_component_health(
                            HardwareComponent::Board,
                            i,
                            ComponentHealth::Healthy,
                        );
                    }
                    let n_psu = server.components(HardwareComponent::PowerSupply).len();
                    for i in 0..n_psu {
                        server.set_component_health(
                            HardwareComponent::PowerSupply,
                            i,
                            ComponentHealth::Healthy,
                        );
                    }
                    server.begin_reboot(now)
                };
                self.queue.schedule(until, WorldEvent::RebootDone(sid));
                // Incident closes at RebootDone; track it.
                self.open_faults.push(OpenFault {
                    incident: inc,
                    mechanism: of.mechanism,
                    server: Some(sid),
                    undo: Undo::ServerRepair(sid),
                });
                return;
            }
        }
        self.try_dispatch(now);
    }

    fn on_service_ready(&mut self, svc: ServiceId, now: SimTime) {
        let became_running = self
            .registry
            .get_mut(svc)
            .map(|s| s.maybe_complete_start(now))
            .unwrap_or(false);
        if !became_running {
            return;
        }
        if let Some((inc, auto)) = self.open_by_service.remove(&svc) {
            if auto {
                self.ledger
                    .restore(inc, now, Actor::Agent, "restart-service");
                self.trace
                    .emit_corr(now, Subsystem::Agent, "restore", Some(inc.0), || {
                        format!("inc={inc} action=restart-service")
                    });
                self.slo_observe(inc, now);
            } else {
                self.close_human(inc, now, "restart-service");
            }
            if let Some(idx) = self.open_faults.iter().position(|of| of.incident == inc) {
                self.open_faults.remove(idx);
            }
        }
        self.sync_lsf_master();
        self.try_dispatch(now);
    }

    fn on_reboot_done(&mut self, sid: ServerId, now: SimTime) {
        let rebooted = self
            .servers
            .get_mut(&sid)
            .map(|s| s.maybe_complete_reboot(now))
            .unwrap_or(false);
        if !rebooted {
            return;
        }
        // Close the hardware incident.
        if let Some(idx) = self
            .open_faults
            .iter()
            .position(|of| of.undo == Undo::ServerRepair(sid))
        {
            let of = self.open_faults.remove(idx);
            self.close_human(of.incident, now, "replace-hardware+reboot");
        }
        // Bring the machine's services back.
        let ids = self.registry.ids_on_server(sid);
        for id in ids {
            let startable = matches!(
                self.registry.get(id).map(|s| s.status),
                Some(ServiceStatus::Crashed) | Some(ServiceStatus::Stopped)
            );
            if !startable || self.registry.dependencies_satisfied(id).is_err() {
                continue;
            }
            let server = self.servers.get_mut(&sid).expect("server exists");
            if let Ok(ready) = self.registry.start(id, server, now) {
                self.queue.schedule(ready, WorldEvent::ServiceReady(id));
            }
        }
        self.try_dispatch(now);
    }
}

/// Build and run a scenario end-to-end.
pub fn run_scenario(cfg: ScenarioConfig) -> ScenarioReport {
    World::build(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn small(mode: ManagementMode) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::small(42, mode);
        cfg.horizon = SimDuration::from_days(7);
        cfg
    }

    #[test]
    fn world_builds_the_site_shape() {
        let w = World::build(small(ManagementMode::Intelliagents));
        assert_eq!(w.servers.len(), 8 + 3 + 3 + 2);
        assert_eq!(w.db_hosts.len(), 8);
        // One service per db host + web/dns/mktdata + lsf master + fes.
        assert!(w.registry.len() >= 8 + 3 + 3);
        assert!(!w.apps.is_empty());
    }

    #[test]
    fn services_come_up_shortly_after_epoch() {
        let mut w = World::build(small(ManagementMode::Intelliagents));
        w.run_until(SimTime::from_mins(30));
        let down: Vec<String> = w
            .registry
            .iter()
            .filter(|s| !s.status.is_serving())
            .map(|s| s.spec.name.clone())
            .collect();
        assert!(down.is_empty(), "not serving after 30 min: {down:?}");
        assert!(w.lsf.master_up);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = run_scenario(small(ManagementMode::ManualOps));
        let b = run_scenario(small(ManagementMode::ManualOps));
        assert_eq!(a.total_downtime_hours, b.total_downtime_hours);
        assert_eq!(a.incidents, b.incidents);
        assert_eq!(a.lsf.completed, b.lsf.completed);
        assert_eq!(a.db_crashes, b.db_crashes);
    }

    #[test]
    fn fault_tape_identical_across_modes() {
        let a = World::build(small(ManagementMode::ManualOps));
        let b = World::build(small(ManagementMode::Intelliagents));
        assert_eq!(a.fault_tape.len(), b.fault_tape.len());
        assert!(a.fault_tape.iter().zip(&b.fault_tape).all(|(x, y)| x == y));
        assert_eq!(a.workload_tape.len(), b.workload_tape.len());
    }

    #[test]
    fn jobs_flow_through_the_week() {
        let report = run_scenario(small(ManagementMode::Intelliagents));
        assert!(
            report.lsf.submitted > 100,
            "submitted = {}",
            report.lsf.submitted
        );
        assert!(
            report.lsf.completed as f64 > report.lsf.submitted as f64 * 0.7,
            "completed = {} of {}",
            report.lsf.completed,
            report.lsf.submitted
        );
    }

    #[test]
    fn agents_beat_manual_ops_on_downtime() {
        let manual = run_scenario(small(ManagementMode::ManualOps));
        let agents = run_scenario(small(ManagementMode::Intelliagents));
        assert!(
            manual.total_downtime_hours > agents.total_downtime_hours * 2.0,
            "manual = {:.1}h agents = {:.1}h",
            manual.total_downtime_hours,
            agents.total_downtime_hours
        );
    }

    #[test]
    fn agent_detection_is_minutes_not_hours() {
        let report = run_scenario(small(ManagementMode::Intelliagents));
        for (cat, totals) in &report.categories {
            if totals.incidents == 0 || *cat == FaultCategory::Hardware {
                continue;
            }
            let det = totals.mean_detection_hours();
            assert!(
                det <= 0.5,
                "{cat}: mean detection {det:.2}h should be within ~2 sweep periods"
            );
        }
    }

    #[test]
    fn manual_mode_sends_no_agent_pages_but_has_incidents() {
        let report = run_scenario(small(ManagementMode::ManualOps));
        assert!(report.incidents > 0);
        // All incidents manual.
        for totals in report.categories.values() {
            assert_eq!(totals.auto_repaired, 0);
        }
    }

    #[test]
    fn open_incidents_are_bounded_at_horizon() {
        let report = run_scenario(small(ManagementMode::Intelliagents));
        // A few faults may be mid-repair at the horizon; they must not
        // accumulate unboundedly.
        assert!(
            report.open_incidents < 10,
            "open = {}",
            report.open_incidents
        );
    }
}
