//! The notification bus: email/SMS to humans, SystemEdge integration.
//!
//! §3.4: when agents cannot resolve a problem "they notify human
//! administrators (usually via email or SMS)". §4: "Intelliagent error
//! reporting mechanisms were integrated with SystemEdge and
//! notifications were presented to operators from within the SystemEdge
//! graphical user interface." The bus records every message with its
//! channel so experiments can audit who was told what, when.

use intelliqos_simkern::SimTime;

/// Delivery channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Email to nominated administrators.
    Email,
    /// SMS page to the on-call person.
    Sms,
    /// Event surfaced in the SystemEdge console.
    SystemEdgeConsole,
}

/// Message urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (daily summaries).
    Info,
    /// Threshold breach / degraded service.
    Warning,
    /// Service down, human action required.
    Critical,
}

/// One recorded notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// When it was sent.
    pub at: SimTime,
    /// Channel used.
    pub channel: Channel,
    /// Urgency.
    pub severity: Severity,
    /// Originating host (agent location) or "admin".
    pub origin: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

/// The datacenter-wide notification log.
#[derive(Debug, Clone, Default)]
pub struct NotificationBus {
    log: Vec<Notification>,
}

impl NotificationBus {
    /// Empty bus.
    pub fn new() -> Self {
        NotificationBus::default()
    }

    /// Send (record) a notification.
    pub fn send(
        &mut self,
        at: SimTime,
        channel: Channel,
        severity: Severity,
        origin: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
    ) {
        self.log.push(Notification {
            at,
            channel,
            severity,
            origin: origin.into(),
            subject: subject.into(),
            body: body.into(),
        });
    }

    /// Convenience: critical page via SMS + SystemEdge console.
    pub fn page(
        &mut self,
        at: SimTime,
        origin: impl Into<String> + Clone,
        subject: impl Into<String> + Clone,
        body: impl Into<String> + Clone,
    ) {
        self.send(
            at,
            Channel::Sms,
            Severity::Critical,
            origin.clone(),
            subject.clone(),
            body.clone(),
        );
        self.send(
            at,
            Channel::SystemEdgeConsole,
            Severity::Critical,
            origin,
            subject,
            body,
        );
    }

    /// Full log.
    pub fn log(&self) -> &[Notification] {
        &self.log
    }

    /// Count by severity.
    pub fn count_severity(&self, severity: Severity) -> usize {
        self.log.iter().filter(|n| n.severity == severity).count()
    }

    /// Count by channel.
    pub fn count_channel(&self, channel: Channel) -> usize {
        self.log.iter().filter(|n| n.channel == channel).count()
    }

    /// Notifications within a time window.
    pub fn in_window(&self, from: SimTime, to: SimTime) -> Vec<&Notification> {
        self.log
            .iter()
            .filter(|n| n.at >= from && n.at < to)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_query() {
        let mut bus = NotificationBus::new();
        bus.send(
            SimTime::from_mins(5),
            Channel::Email,
            Severity::Info,
            "db001",
            "daily summary",
            "all well",
        );
        bus.page(SimTime::from_mins(10), "db002", "db down", "restart failed");
        assert_eq!(bus.log().len(), 3);
        assert_eq!(bus.count_severity(Severity::Critical), 2);
        assert_eq!(bus.count_channel(Channel::Sms), 1);
        assert_eq!(bus.count_channel(Channel::SystemEdgeConsole), 1);
    }

    #[test]
    fn window_filter() {
        let mut bus = NotificationBus::new();
        for m in [1u64, 5, 9, 15] {
            bus.send(
                SimTime::from_mins(m),
                Channel::Email,
                Severity::Warning,
                "x",
                "s",
                "b",
            );
        }
        let w = bus.in_window(SimTime::from_mins(5), SimTime::from_mins(15));
        assert_eq!(w.len(), 2);
    }
}
