//! The online QoS observatory: per-service availability budgets,
//! MTTR, and windowed error-budget burn rate, maintained **during**
//! `World::run` instead of reconstructed post-hoc from the ledger.
//!
//! The paper's headline claim is an availability number — 99.99% after
//! deploying intelliagents — so the reproduction treats availability as
//! an explicit SLO: every incident charges its downtime to a service
//! key (service name, hostname, or infrastructure domain), the tracker
//! keeps the remaining downtime budget against the target, and a
//! windowed burn-rate check fires an `SloAlert` the moment a service
//! consumes budget faster than the configured multiple of its
//! sustainable rate — the Google-SRE-style fast-burn page, evaluated
//! online at incident close.
//!
//! Two refinements make the budget actionable rather than a mixed bag:
//!
//! * every closed incident carries a [`FailureClass`], and the burn
//!   accounting is **scoped** — by default only `service-fault`
//!   (actionable) downtime burns the budget, with `client-workload`
//!   and `transient-abort` downtime tracked separately and reported
//!   per scope;
//! * targets are **declared, differentiated objects** on the scenario
//!   ([`SloConfig::service_targets`]) instead of one compile-time
//!   constant, validated at `World::try_build`, so a best-effort batch
//!   tier and a 99.99% database tier each report against their own
//!   budget line.
//!
//! Everything here is simulation-time arithmetic over ledger events:
//! deterministic, allocation-light, and always on (a run without
//! incidents costs nothing beyond the struct).

use std::collections::BTreeMap;

use intelliqos_simkern::{SimDuration, SimTime};

use crate::downtime::{json_str, FailureClass, IncidentId};

/// Which failure classes an accounting view admits. `Service` (the
/// default burn scope) counts only actionable failures; `All` is the
/// legacy undifferentiated view; `Client` and `Abort` isolate the
/// non-actionable classes so the arithmetic closes:
/// `all == service + client + abort` in every integer column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloScope {
    /// Every closed incident, regardless of class.
    All,
    /// Only `service-fault` incidents — the actionable budget view.
    Service,
    /// Only `client-workload` incidents.
    Client,
    /// Only `transient-abort` incidents.
    Abort,
}

impl SloScope {
    /// Every scope, report order.
    pub const ALL: [SloScope; 4] = [
        SloScope::All,
        SloScope::Service,
        SloScope::Client,
        SloScope::Abort,
    ];

    /// Lower-case tag used in exports and the `--scope` CLI toggle.
    pub fn label(self) -> &'static str {
        match self {
            SloScope::All => "all",
            SloScope::Service => "service",
            SloScope::Client => "client",
            SloScope::Abort => "abort",
        }
    }

    /// Parse the closed-world label set; anything else is `None`.
    pub fn parse(s: &str) -> Option<SloScope> {
        SloScope::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Does an incident of `class` count under this scope?
    pub fn admits(self, class: FailureClass) -> bool {
        match self {
            SloScope::All => true,
            SloScope::Service => class == FailureClass::ServiceFault,
            SloScope::Client => class == FailureClass::ClientWorkload,
            SloScope::Abort => class == FailureClass::TransientAbort,
        }
    }
}

impl std::fmt::Display for SloScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Availability-SLO parameters — the declared QoS objectives of a
/// scenario, carried on `ScenarioConfig` and validated at
/// `World::try_build` (targets in `(0, 1)`, no duplicate service keys,
/// keys resolving to real hosts/services).
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Scenario-wide availability target in `(0, 1)`; the paper claims
    /// 99.99%. Services without an override report against this.
    pub availability_target: f64,
    /// Burn-rate evaluation window.
    pub window: SimDuration,
    /// Alert when the window's downtime exceeds `burn_threshold ×` the
    /// budget the window is allotted at the target rate. At 99.99% a
    /// 24 h window earns ~8.6 s of budget, so the default of 100 fires
    /// on ≳14 min of downtime per day — routine for hours-long manual
    /// repairs, rare for minutes-long agent heals.
    pub burn_threshold: f64,
    /// Which failure classes burn the budget. Defaults to
    /// [`SloScope::Service`]: only actionable failures page.
    pub burn_scope: SloScope,
    /// Per-service target overrides, `(slo key, target)` pairs. The
    /// key is whatever the ledger charges the incident to — a service
    /// name (`trades-db-003`), a hostname (`db003`), or an
    /// infrastructure domain (`network`, `site`).
    pub service_targets: Vec<(String, f64)>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability_target: 0.9999,
            window: SimDuration::from_hours(24),
            burn_threshold: 100.0,
            burn_scope: SloScope::Service,
            service_targets: Vec::new(),
        }
    }
}

impl SloConfig {
    /// The availability target `service` reports against: its declared
    /// override, or the scenario-wide default.
    pub fn target_for(&self, service: &str) -> f64 {
        self.service_targets
            .iter()
            .find(|(k, _)| k == service)
            .map(|&(_, t)| t)
            .unwrap_or(self.availability_target)
    }
}

/// One fast-burn alert: `service` consumed its error budget at
/// `burn_rate ×` the sustainable rate over the configured window ending
/// at `at`. Only incidents admitted by the configured burn scope feed
/// the window, so the page is actionable by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// When the alert fired (the incident-close instant).
    pub at: SimTime,
    /// The service (or host / domain) burning budget.
    pub service: String,
    /// The incident whose close triggered the evaluation.
    pub incident: IncidentId,
    /// Window downtime ÷ window budget.
    pub burn_rate: f64,
}

/// Integer accumulators for one failure class of one service.
#[derive(Debug, Clone, Copy, Default)]
struct ClassSlo {
    incidents: u64,
    downtime: SimDuration,
    repair: SimDuration,
}

#[derive(Debug, Clone, Default)]
struct ServiceSlo {
    /// Accumulators indexed by [`FailureClass::index`].
    by_class: [ClassSlo; 3],
    burn_alerts: u64,
    /// Closed downtime episodes `(onset, restored, class)` still inside
    /// the burn window; pruned as the window slides.
    episodes: Vec<(SimTime, SimTime, FailureClass)>,
}

impl ServiceSlo {
    /// Sum the accumulators the scope admits.
    fn scoped(&self, scope: SloScope) -> ClassSlo {
        let mut out = ClassSlo::default();
        for class in FailureClass::ALL {
            if scope.admits(class) {
                let c = &self.by_class[class.index()];
                out.incidents += c.incidents;
                out.downtime += c.downtime;
                out.repair += c.repair;
            }
        }
        out
    }
}

/// Online SLO state for one run. Fed by the world at every incident
/// close; queried for the end-of-run report.
#[derive(Debug, Clone)]
pub struct SloTracker {
    cfg: SloConfig,
    fleet_size: u64,
    services: BTreeMap<String, ServiceSlo>,
    alerts: Vec<SloAlert>,
}

impl SloTracker {
    /// A tracker for a fleet of `fleet_size` servers (the denominator
    /// of the fleet-wide availability figure).
    pub fn new(cfg: SloConfig, fleet_size: u64) -> Self {
        SloTracker {
            cfg,
            fleet_size: fleet_size.max(1),
            services: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Account one closed incident of failure class `class`: charge
    /// `restored - onset` of downtime to `service` under that class,
    /// update MTTR, slide the burn window, and return the fast-burn
    /// alert if the window blew its threshold. Only episodes the
    /// configured burn scope admits feed the window — a client-induced
    /// outage or an auto-healed blip never pages under the default
    /// `service` scope.
    pub fn on_close(
        &mut self,
        service: &str,
        incident: IncidentId,
        class: FailureClass,
        onset: SimTime,
        detected: SimTime,
        restored: SimTime,
    ) -> Option<SloAlert> {
        let burn_scope = self.cfg.burn_scope;
        let st = self.services.entry(service.to_string()).or_default();
        let c = &mut st.by_class[class.index()];
        c.incidents += 1;
        c.downtime += restored.since(onset);
        c.repair += restored.since(detected);
        st.episodes.push((onset, restored, class));

        // Window downtime: overlap of every recent in-scope episode
        // with [restored - window, restored].
        let wstart =
            SimTime::from_secs(restored.as_secs().saturating_sub(self.cfg.window.as_secs()));
        st.episodes.retain(|&(_, end, _)| end >= wstart);
        // Episodes close in time order, so every retained end is within
        // the window; the overlap is end minus the clamped start.
        let window_downtime: u64 = st
            .episodes
            .iter()
            .filter(|&&(_, _, cls)| burn_scope.admits(cls))
            .map(|&(s, e, _)| e.as_secs() - s.as_secs().max(wstart.as_secs()))
            .sum();
        let budget = (1.0 - self.cfg.target_for(service)) * self.cfg.window.as_secs() as f64;
        if budget <= 0.0 {
            return None;
        }
        let burn_rate = window_downtime as f64 / budget;
        if burn_rate >= self.cfg.burn_threshold {
            st.burn_alerts += 1;
            let alert = SloAlert {
                at: restored,
                service: service.to_string(),
                incident,
                burn_rate,
            };
            self.alerts.push(alert.clone());
            Some(alert)
        } else {
            None
        }
    }

    /// Every fast-burn alert fired so far, in firing order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Snapshot the availability report for a run of length `horizon`.
    pub fn report(&self, horizon: SimDuration) -> SloReport {
        let horizon_secs = horizon.as_secs().max(1);
        let services = self
            .services
            .iter()
            .map(|(name, st)| {
                let target = self.cfg.target_for(name);
                let mut row = ServiceSloRow {
                    service: name.clone(),
                    target,
                    incidents: 0,
                    downtime_secs: 0,
                    availability: 0.0,
                    budget_secs: 0.0,
                    budget_remaining_secs: 0.0,
                    repair_secs: 0,
                    mttr_secs: 0.0,
                    burn_alerts: st.burn_alerts,
                    scopes: SloScope::ALL
                        .into_iter()
                        .map(|scope| {
                            let c = st.scoped(scope);
                            ScopeSloRow {
                                scope,
                                incidents: c.incidents,
                                downtime_secs: c.downtime.as_secs(),
                                repair_secs: c.repair.as_secs(),
                                availability: 0.0,
                                mttr_secs: 0.0,
                                burn_rate: 0.0,
                            }
                        })
                        .collect(),
                };
                row.recompute(horizon_secs);
                row
            })
            .collect();
        SloReport {
            target: self.cfg.availability_target,
            window_secs: self.cfg.window.as_secs(),
            burn_threshold: self.cfg.burn_threshold,
            burn_scope: self.cfg.burn_scope,
            horizon_secs,
            fleet_size: self.fleet_size,
            services,
            alerts: self.alerts.clone(),
        }
    }
}

/// One accounting scope of one service: the same integer numerators
/// and derived figures, restricted to the failure classes the scope
/// admits. `burn_rate` here is horizon budget utilisation — downtime ÷
/// the whole-run budget at the row's target — not the windowed paging
/// rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeSloRow {
    /// Which classes this row counts.
    pub scope: SloScope,
    /// Closed incidents admitted by the scope.
    pub incidents: u64,
    /// Downtime charged under the scope, seconds.
    pub downtime_secs: u64,
    /// Repair time under the scope, seconds (integer MTTR numerator).
    pub repair_secs: u64,
    /// `1 - downtime / horizon`, clamped to `[0, 1]`.
    pub availability: f64,
    /// Mean time to repair over the scope's incidents, seconds.
    pub mttr_secs: f64,
    /// Scope downtime ÷ horizon budget at the service's target.
    pub burn_rate: f64,
}

/// One service's availability accounting over the run. The top-level
/// fields are the undifferentiated (`all`-scope) view every consumer
/// has always read; `scopes` carries the per-class breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSloRow {
    /// The accounting key (service name, hostname, or domain).
    pub service: String,
    /// The availability target this service reports against (its
    /// declared override, or the scenario default).
    pub target: f64,
    /// Closed incidents charged to it (all scopes).
    pub incidents: u64,
    /// Total downtime charged, seconds (all scopes).
    pub downtime_secs: u64,
    /// `1 - downtime / horizon`, clamped to `[0, 1]`.
    pub availability: f64,
    /// The downtime budget the horizon allows at the target.
    pub budget_secs: f64,
    /// Budget minus charged downtime (negative = budget blown).
    pub budget_remaining_secs: f64,
    /// Total repair time (`restored - detected` summed), seconds. The
    /// integer MTTR numerator, kept so merged reports can recompute
    /// MTTR exactly instead of averaging averages.
    pub repair_secs: u64,
    /// Mean time to repair: mean of `restored - detected`, seconds.
    pub mttr_secs: f64,
    /// Fast-burn alerts fired for this service.
    pub burn_alerts: u64,
    /// Per-scope breakdown, [`SloScope::ALL`] order. The integer
    /// columns close: `all == service + client + abort`.
    pub scopes: Vec<ScopeSloRow>,
}

impl ServiceSloRow {
    /// Recompute every derived float from the integer numerators and
    /// the row's own target — the one code path both `report` and
    /// `merge` use, which is what makes merged reports bit-equal to a
    /// single-tracker computation.
    fn recompute(&mut self, horizon_secs: u64) {
        let horizon = horizon_secs.max(1) as f64;
        let budget = (1.0 - self.target) * horizon;
        for s in &mut self.scopes {
            s.availability = (1.0 - s.downtime_secs as f64 / horizon).clamp(0.0, 1.0);
            s.mttr_secs = if s.incidents == 0 {
                0.0
            } else {
                s.repair_secs as f64 / s.incidents as f64
            };
            s.burn_rate = if budget > 0.0 {
                s.downtime_secs as f64 / budget
            } else {
                0.0
            };
        }
        let all = self
            .scopes
            .iter()
            .find(|s| s.scope == SloScope::All)
            .cloned()
            .unwrap_or(ScopeSloRow {
                scope: SloScope::All,
                incidents: 0,
                downtime_secs: 0,
                repair_secs: 0,
                availability: 1.0,
                mttr_secs: 0.0,
                burn_rate: 0.0,
            });
        self.incidents = all.incidents;
        self.downtime_secs = all.downtime_secs;
        self.repair_secs = all.repair_secs;
        self.availability = all.availability;
        self.mttr_secs = all.mttr_secs;
        self.budget_secs = budget;
        self.budget_remaining_secs = budget - all.downtime_secs as f64;
    }

    /// The breakdown row for one scope.
    pub fn scope_row(&self, scope: SloScope) -> Option<&ScopeSloRow> {
        self.scopes.iter().find(|s| s.scope == scope)
    }
}

/// The schema-validated `slo_report` document exported next to every
/// figure's evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Scenario-wide availability target (per-service rows may carry
    /// their own).
    pub target: f64,
    /// Burn-rate window, seconds.
    pub window_secs: u64,
    /// Burn-rate alert threshold.
    pub burn_threshold: f64,
    /// Which failure classes burned the budget in this run.
    pub burn_scope: SloScope,
    /// Run length, seconds.
    pub horizon_secs: u64,
    /// Servers in the fleet (denominator of the fleet availability).
    pub fleet_size: u64,
    /// Per-service rows, key order.
    pub services: Vec<ServiceSloRow>,
    /// Every alert fired, in firing order.
    pub alerts: Vec<SloAlert>,
}

impl SloReport {
    /// Total downtime across every service key, seconds (all scopes).
    pub fn total_downtime_secs(&self) -> u64 {
        self.services.iter().map(|s| s.downtime_secs).sum()
    }

    /// Total downtime under one scope, seconds.
    pub fn scope_downtime_secs(&self, scope: SloScope) -> u64 {
        self.services
            .iter()
            .filter_map(|s| s.scope_row(scope))
            .map(|s| s.downtime_secs)
            .sum()
    }

    /// Fleet-wide availability: `1 - total_downtime / (fleet × horizon)`
    /// — the figure comparable to the paper's 99.99% claim, where one
    /// server-incident charges only its share of the fleet's uptime.
    pub fn fleet_availability(&self) -> f64 {
        let denom = (self.fleet_size * self.horizon_secs) as f64;
        (1.0 - self.total_downtime_secs() as f64 / denom).clamp(0.0, 1.0)
    }

    /// Fleet-wide availability counting only the downtime one scope
    /// admits.
    pub fn fleet_availability_scoped(&self, scope: SloScope) -> f64 {
        let denom = (self.fleet_size * self.horizon_secs) as f64;
        (1.0 - self.scope_downtime_secs(scope) as f64 / denom).clamp(0.0, 1.0)
    }

    /// Serialise as JSON. Hand-rolled (no serde in the tree); validated
    /// by `evidence_check`.
    pub fn to_json(&self) -> String {
        self.json_doc(None)
    }

    /// Serialise with run provenance (seed + management mode) — the
    /// shape written into `results/evidence/`.
    pub fn to_json_with_run(&self, seed: u64, mode: &str) -> String {
        self.json_doc(Some((seed, mode)))
    }

    fn json_doc(&self, run: Option<(u64, &str)>) -> String {
        let mut out = String::from("{\n  \"report\": \"slo\",\n");
        if let Some((seed, mode)) = run {
            out.push_str(&format!(
                "  \"seed\": {},\n  \"mode\": {},\n",
                seed,
                json_str(mode)
            ));
        }
        out.push_str(&format!(
            "  \"target\": {:.6},\n  \"window_secs\": {},\n  \"burn_threshold\": {:.2},\n",
            self.target, self.window_secs, self.burn_threshold
        ));
        out.push_str(&format!(
            "  \"burn_scope\": {},\n",
            json_str(self.burn_scope.label())
        ));
        out.push_str(&format!(
            "  \"horizon_secs\": {},\n  \"fleet_size\": {},\n",
            self.horizon_secs, self.fleet_size
        ));
        out.push_str(&format!(
            "  \"total_downtime_secs\": {},\n  \"fleet_availability\": {:.8},\n",
            self.total_downtime_secs(),
            self.fleet_availability()
        ));
        out.push_str("  \"scope_downtime_secs\": {");
        for (i, scope) in SloScope::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {}",
                json_str(scope.label()),
                self.scope_downtime_secs(scope)
            ));
        }
        out.push_str("},\n  \"services\": [");
        for (i, s) in self.services.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"service\": {}, \"target\": {:.6}, \"incidents\": {}, \
                 \"downtime_secs\": {}, \"availability\": {:.8}, \"budget_secs\": {:.2}, \
                 \"budget_remaining_secs\": {:.2}, \"repair_secs\": {}, \
                 \"mttr_secs\": {:.2}, \"burn_alerts\": {}, \"scopes\": {{",
                json_str(&s.service),
                s.target,
                s.incidents,
                s.downtime_secs,
                s.availability,
                s.budget_secs,
                s.budget_remaining_secs,
                s.repair_secs,
                s.mttr_secs,
                s.burn_alerts
            ));
            for (j, sc) in s.scopes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {}: {{\"incidents\": {}, \"downtime_secs\": {}, \
                     \"repair_secs\": {}, \"availability\": {:.8}, \"mttr_secs\": {:.2}, \
                     \"burn_rate\": {:.4}}}",
                    json_str(sc.scope.label()),
                    sc.incidents,
                    sc.downtime_secs,
                    sc.repair_secs,
                    sc.availability,
                    sc.mttr_secs,
                    sc.burn_rate
                ));
            }
            out.push_str("}}");
        }
        if !self.services.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"at\": {}, \"service\": {}, \"incident\": {}, \"burn_rate\": {:.2}}}",
                a.at.as_secs(),
                json_str(&a.service),
                a.incident.0,
                a.burn_rate
            ));
        }
        if !self.alerts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Merge `other` into `self` — the fleet-assembly operation: rows
    /// for the same service key combine as if one tracker had accounted
    /// every incident. Downtime, repair time, incident and alert counts
    /// add as integers per scope; availability, budgets, burn rates and
    /// MTTR are then recomputed from the merged integers, so the result
    /// is exactly the single-ledger computation, not an average of
    /// averages. Disjoint services interleave in key order, fleet sizes
    /// add, and the alert streams merge in firing order. The two
    /// reports must describe the same SLO regime — identical default
    /// target, window, burn threshold, burn scope, and horizon, plus
    /// identical per-service targets wherever a key appears in both —
    /// because the derived numbers are only comparable against one
    /// budget line.
    pub fn merge(&mut self, other: &SloReport) -> Result<(), String> {
        if self.target.to_bits() != other.target.to_bits()
            || self.window_secs != other.window_secs
            || self.burn_threshold.to_bits() != other.burn_threshold.to_bits()
        {
            return Err(format!(
                "SLO config mismatch: target {} vs {}, window {} vs {}, threshold {} vs {}",
                self.target,
                other.target,
                self.window_secs,
                other.window_secs,
                self.burn_threshold,
                other.burn_threshold
            ));
        }
        if self.burn_scope != other.burn_scope {
            return Err(format!(
                "burn scope mismatch: {} vs {}",
                self.burn_scope, other.burn_scope
            ));
        }
        if self.horizon_secs != other.horizon_secs {
            return Err(format!(
                "horizon mismatch: {} vs {} seconds",
                self.horizon_secs, other.horizon_secs
            ));
        }
        for row in &other.services {
            if let Ok(i) = self
                .services
                .binary_search_by(|r| r.service.cmp(&row.service))
            {
                if self.services[i].target.to_bits() != row.target.to_bits() {
                    return Err(format!(
                        "per-service target mismatch for {}: {} vs {}",
                        row.service, self.services[i].target, row.target
                    ));
                }
            }
        }
        self.fleet_size += other.fleet_size;
        for row in &other.services {
            match self
                .services
                .binary_search_by(|r| r.service.cmp(&row.service))
            {
                Ok(i) => {
                    let r = &mut self.services[i];
                    r.burn_alerts += row.burn_alerts;
                    for (mine, theirs) in r.scopes.iter_mut().zip(&row.scopes) {
                        debug_assert_eq!(mine.scope, theirs.scope);
                        mine.incidents += theirs.incidents;
                        mine.downtime_secs += theirs.downtime_secs;
                        mine.repair_secs += theirs.repair_secs;
                    }
                }
                Err(i) => self.services.insert(i, row.clone()),
            }
        }
        let horizon_secs = self.horizon_secs;
        for r in &mut self.services {
            r.recompute(horizon_secs);
        }
        let mut alerts = Vec::with_capacity(self.alerts.len() + other.alerts.len());
        alerts.extend(self.alerts.iter().cloned());
        alerts.extend(other.alerts.iter().cloned());
        alerts.sort_by(|a, b| {
            (a.at, &a.service, a.incident.0).cmp(&(b.at, &b.service, b.incident.0))
        });
        self.alerts = alerts;
        Ok(())
    }

    /// Short human summary for triage output.
    pub fn render_summary(&self) -> String {
        let blown = self
            .services
            .iter()
            .filter(|s| s.budget_remaining_secs < 0.0)
            .count();
        format!(
            "slo: fleet availability {:.5} (target {:.4}, burn scope {}), {} service key(s), \
             {} over budget, {} burn alert(s); downtime by class: \
             service {}s / client {}s / abort {}s",
            self.fleet_availability(),
            self.target,
            self.burn_scope,
            self.services.len(),
            blown,
            self.alerts.len(),
            self.scope_downtime_secs(SloScope::Service),
            self.scope_downtime_secs(SloScope::Client),
            self.scope_downtime_secs(SloScope::Abort),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(
        t: &mut SloTracker,
        svc: &str,
        id: u64,
        onset_s: u64,
        restored_s: u64,
    ) -> Option<SloAlert> {
        close_class(t, svc, id, FailureClass::ServiceFault, onset_s, restored_s)
    }

    fn close_class(
        t: &mut SloTracker,
        svc: &str,
        id: u64,
        class: FailureClass,
        onset_s: u64,
        restored_s: u64,
    ) -> Option<SloAlert> {
        t.on_close(
            svc,
            IncidentId(id),
            class,
            SimTime::from_secs(onset_s),
            SimTime::from_secs(onset_s),
            SimTime::from_secs(restored_s),
        )
    }

    #[test]
    fn downtime_and_mttr_accumulate_per_service() {
        let mut t = SloTracker::new(SloConfig::default(), 10);
        close(&mut t, "db003", 0, 100, 400);
        close(&mut t, "db003", 1, 10_000, 10_600);
        close(&mut t, "web001", 2, 50, 150);
        let r = t.report(SimDuration::from_days(1));
        assert_eq!(r.services.len(), 2);
        let db = r.services.iter().find(|s| s.service == "db003").unwrap();
        assert_eq!(db.incidents, 2);
        assert_eq!(db.downtime_secs, 900);
        assert!((db.mttr_secs - 450.0).abs() < 1e-9);
        assert!((db.availability - (1.0 - 900.0 / 86_400.0)).abs() < 1e-12);
        assert_eq!(r.total_downtime_secs(), 1000);
        // Fleet availability spreads downtime over the whole fleet.
        assert!((r.fleet_availability() - (1.0 - 1000.0 / (10.0 * 86_400.0))).abs() < 1e-12);
    }

    #[test]
    fn fast_burn_fires_over_threshold_only() {
        let cfg = SloConfig {
            availability_target: 0.9999,
            window: SimDuration::from_hours(24),
            burn_threshold: 100.0,
            ..SloConfig::default()
        };
        // Budget per 24 h window: 8.64 s; threshold: 864 s of downtime.
        let mut t = SloTracker::new(cfg, 1);
        assert!(close(&mut t, "web001", 0, 1000, 1500).is_none()); // 500 s: under
        let alert = close(&mut t, "web001", 1, 2000, 2500); // window now 1000 s
        let alert = alert.expect("second incident pushes the window over");
        assert!((alert.burn_rate - 1000.0 / 8.64).abs() < 1e-6);
        assert_eq!(alert.incident, IncidentId(1));
        assert_eq!(t.alerts().len(), 1);
        let r = t.report(SimDuration::from_days(1));
        assert_eq!(r.services[0].burn_alerts, 1);
    }

    #[test]
    fn non_actionable_downtime_never_pages_under_default_scope() {
        // The same downtime that pages as a service fault stays silent
        // when it is client-induced or an auto-healed blip — the burn
        // window only admits what the scope admits.
        let mut t = SloTracker::new(SloConfig::default(), 1);
        assert!(close_class(&mut t, "db003", 0, FailureClass::ClientWorkload, 0, 2000).is_none());
        assert!(
            close_class(&mut t, "db003", 1, FailureClass::TransientAbort, 3000, 5000).is_none()
        );
        assert!(t.alerts().is_empty(), "non-actionable downtime paged");
        // The downtime is still accounted — just not against the burn
        // window.
        let r = t.report(SimDuration::from_days(1));
        let row = &r.services[0];
        assert_eq!(row.downtime_secs, 4000);
        assert_eq!(row.scope_row(SloScope::Service).unwrap().downtime_secs, 0);
        assert_eq!(row.scope_row(SloScope::Client).unwrap().downtime_secs, 2000);
        assert_eq!(row.scope_row(SloScope::Abort).unwrap().downtime_secs, 2000);
        // An actionable fault of the same size pages immediately.
        assert!(close(&mut t, "db003", 2, 10_000, 12_000).is_some());
    }

    #[test]
    fn all_scope_burn_counts_every_class() {
        let cfg = SloConfig {
            burn_scope: SloScope::All,
            ..SloConfig::default()
        };
        let mut t = SloTracker::new(cfg, 1);
        let alert = close_class(&mut t, "db003", 0, FailureClass::ClientWorkload, 0, 2000);
        assert!(
            alert.is_some(),
            "under --scope all, client downtime burns too"
        );
    }

    #[test]
    fn scope_columns_close_to_the_all_row() {
        let mut t = SloTracker::new(SloConfig::default(), 4);
        close_class(&mut t, "a", 0, FailureClass::ServiceFault, 0, 300);
        close_class(&mut t, "a", 1, FailureClass::ClientWorkload, 400, 500);
        close_class(&mut t, "a", 2, FailureClass::TransientAbort, 600, 660);
        close_class(&mut t, "a", 3, FailureClass::ServiceFault, 700, 730);
        let r = t.report(SimDuration::from_days(1));
        let row = &r.services[0];
        for col in [
            |s: &ScopeSloRow| s.incidents,
            |s: &ScopeSloRow| s.downtime_secs,
            |s: &ScopeSloRow| s.repair_secs,
        ] {
            let all = col(row.scope_row(SloScope::All).unwrap());
            let parts = col(row.scope_row(SloScope::Service).unwrap())
                + col(row.scope_row(SloScope::Client).unwrap())
                + col(row.scope_row(SloScope::Abort).unwrap());
            assert_eq!(all, parts, "scope columns must close");
        }
        assert_eq!(row.incidents, 4);
        assert_eq!(row.downtime_secs, 490);
    }

    #[test]
    fn per_service_targets_give_each_service_its_own_budget() {
        let cfg = SloConfig {
            service_targets: vec![("batch".to_string(), 0.99), ("db003".to_string(), 0.99999)],
            ..SloConfig::default()
        };
        let mut t = SloTracker::new(cfg, 2);
        close(&mut t, "batch", 0, 0, 600);
        close(&mut t, "db003", 1, 0, 600);
        close(&mut t, "web001", 2, 0, 600);
        let r = t.report(SimDuration::from_days(1));
        let by_key = |k: &str| r.services.iter().find(|s| s.service == k).unwrap();
        let batch = by_key("batch");
        let db = by_key("db003");
        let web = by_key("web001");
        assert!((batch.target - 0.99).abs() < 1e-12);
        assert!((db.target - 0.99999).abs() < 1e-12);
        assert!((web.target - 0.9999).abs() < 1e-12, "default applies");
        // Same downtime, different budgets: the loose target keeps
        // budget in hand, the tight one is blown.
        assert!((batch.budget_secs - 864.0).abs() < 1e-9);
        assert!(batch.budget_remaining_secs > 0.0);
        assert!(db.budget_remaining_secs < 0.0);
        // And the tight target pages where the loose one does not.
        assert!(t.alerts().iter().any(|a| a.service == "db003"));
        assert!(!t.alerts().iter().any(|a| a.service == "batch"));
    }

    #[test]
    fn burn_window_slides_past_old_episodes() {
        let cfg = SloConfig {
            availability_target: 0.9999,
            window: SimDuration::from_hours(1),
            burn_threshold: 100.0, // 0.36 s budget/h → 36 s threshold
            ..SloConfig::default()
        };
        let mut t = SloTracker::new(cfg, 1);
        assert!(close(&mut t, "a", 0, 0, 100).is_some());
        // Two days later the old episode is out of the window; 30 s of
        // fresh downtime stays under the 36 s threshold.
        let two_days = 2 * 86_400;
        assert!(close(&mut t, "a", 1, two_days, two_days + 30).is_none());
        // Total downtime still counts both episodes.
        let r = t.report(SimDuration::from_days(3));
        assert_eq!(r.services[0].downtime_secs, 130);
    }

    #[test]
    fn report_json_is_balanced_and_tagged() {
        let mut t = SloTracker::new(SloConfig::default(), 5);
        close(&mut t, "db003", 0, 0, 7200); // 2 h: alert at default threshold
        let r = t.report(SimDuration::from_days(1));
        let json = r.to_json();
        assert!(json.contains("\"report\": \"slo\""));
        assert!(json.contains("\"service\": \"db003\""));
        assert!(json.contains("\"burn_rate\""));
        assert!(json.contains("\"burn_scope\": \"service\""));
        assert!(json.contains("\"scope_downtime_secs\""));
        assert!(json.contains("\"scopes\": {"));
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        assert!(r.render_summary().contains("1 over budget"));
        assert!(r.render_summary().contains("burn scope service"));
    }

    fn close_det(
        t: &mut SloTracker,
        svc: &str,
        id: u64,
        class: FailureClass,
        onset_s: u64,
        detected_s: u64,
        restored_s: u64,
    ) {
        t.on_close(
            svc,
            IncidentId(id),
            class,
            SimTime::from_secs(onset_s),
            SimTime::from_secs(detected_s),
            SimTime::from_secs(restored_s),
        );
    }

    #[test]
    fn merged_report_equals_single_ledger_computation() {
        // The same incident stream fed whole into one tracker, and
        // split across two trackers whose reports are then merged: the
        // per-service availability and MTTR must match exactly (bit
        // equality, not epsilon) in every scope, because merge
        // recomputes them from the summed integer numerators.
        use FailureClass::{ClientWorkload as CW, ServiceFault as SF, TransientAbort as TA};
        let incidents: [(&str, FailureClass, u64, u64, u64); 7] = [
            ("db003", SF, 100, 130, 400),
            ("web001", TA, 50, 55, 150),
            ("db003", CW, 10_000, 10_200, 10_600),
            ("lsf", SF, 2_000, 2_001, 2_047),
            ("web001", SF, 40_000, 40_010, 41_000),
            ("db003", TA, 80_000, 80_003, 80_900),
            ("mail", CW, 5, 6, 7),
        ];
        let cfg = SloConfig {
            service_targets: vec![("db003".to_string(), 0.99999)],
            ..SloConfig::default()
        };
        let mut whole = SloTracker::new(cfg.clone(), 10);
        let mut left = SloTracker::new(cfg.clone(), 6);
        let mut right = SloTracker::new(cfg, 4);
        for (i, &(svc, class, onset, det, rest)) in incidents.iter().enumerate() {
            close_det(&mut whole, svc, i as u64, class, onset, det, rest);
            let half = if i % 2 == 0 { &mut left } else { &mut right };
            close_det(half, svc, i as u64, class, onset, det, rest);
        }
        let horizon = SimDuration::from_days(2);
        let single = whole.report(horizon);
        let mut merged = left.report(horizon);
        merged.merge(&right.report(horizon)).unwrap();

        assert_eq!(merged.fleet_size, single.fleet_size);
        assert_eq!(merged.services.len(), single.services.len());
        for (m, s) in merged.services.iter().zip(&single.services) {
            assert_eq!(m.service, s.service);
            assert_eq!(m.target.to_bits(), s.target.to_bits());
            assert_eq!(m.incidents, s.incidents);
            assert_eq!(m.downtime_secs, s.downtime_secs);
            assert_eq!(m.repair_secs, s.repair_secs);
            assert_eq!(
                m.availability.to_bits(),
                s.availability.to_bits(),
                "availability for {} must merge exactly",
                m.service
            );
            assert_eq!(
                m.mttr_secs.to_bits(),
                s.mttr_secs.to_bits(),
                "MTTR for {} must merge exactly",
                m.service
            );
            assert_eq!(m.budget_secs.to_bits(), s.budget_secs.to_bits());
            assert_eq!(
                m.budget_remaining_secs.to_bits(),
                s.budget_remaining_secs.to_bits()
            );
            for (ms, ss) in m.scopes.iter().zip(&s.scopes) {
                assert_eq!(ms.scope, ss.scope);
                assert_eq!(ms.incidents, ss.incidents);
                assert_eq!(ms.downtime_secs, ss.downtime_secs);
                assert_eq!(ms.repair_secs, ss.repair_secs);
                assert_eq!(
                    ms.availability.to_bits(),
                    ss.availability.to_bits(),
                    "scope {} availability for {} must merge exactly",
                    ms.scope,
                    m.service
                );
                assert_eq!(ms.mttr_secs.to_bits(), ss.mttr_secs.to_bits());
                assert_eq!(ms.burn_rate.to_bits(), ss.burn_rate.to_bits());
            }
        }
        assert_eq!(merged.total_downtime_secs(), single.total_downtime_secs());
        for scope in SloScope::ALL {
            assert_eq!(
                merged.scope_downtime_secs(scope),
                single.scope_downtime_secs(scope)
            );
        }
        assert_eq!(
            merged.fleet_availability().to_bits(),
            single.fleet_availability().to_bits()
        );
    }

    #[test]
    fn merge_interleaves_disjoint_services_in_key_order() {
        let mut a = SloTracker::new(SloConfig::default(), 1);
        close(&mut a, "web001", 0, 0, 10);
        close(&mut a, "db003", 1, 0, 10);
        let mut b = SloTracker::new(SloConfig::default(), 1);
        close(&mut b, "lsf", 2, 0, 10);
        close(&mut b, "admin", 3, 0, 10);
        let horizon = SimDuration::from_days(1);
        let mut merged = a.report(horizon);
        merged.merge(&b.report(horizon)).unwrap();
        let keys: Vec<&str> = merged.services.iter().map(|s| s.service.as_str()).collect();
        assert_eq!(keys, ["admin", "db003", "lsf", "web001"]);
        assert_eq!(merged.fleet_size, 2);
    }

    #[test]
    fn merge_rejects_mismatched_regimes() {
        let t = SloTracker::new(SloConfig::default(), 1);
        let mut a = t.report(SimDuration::from_days(1));
        let b = t.report(SimDuration::from_days(2));
        assert!(a.merge(&b).is_err(), "horizon mismatch must be rejected");
        let other_cfg = SloConfig {
            availability_target: 0.999,
            ..SloConfig::default()
        };
        let c = SloTracker::new(other_cfg, 1).report(SimDuration::from_days(1));
        assert!(a.merge(&c).is_err(), "target mismatch must be rejected");
        let scoped_cfg = SloConfig {
            burn_scope: SloScope::All,
            ..SloConfig::default()
        };
        let d = SloTracker::new(scoped_cfg, 1).report(SimDuration::from_days(1));
        assert!(a.merge(&d).is_err(), "scope mismatch must be rejected");
    }

    #[test]
    fn merge_rejects_mismatched_per_service_targets() {
        let tight = SloConfig {
            service_targets: vec![("db003".to_string(), 0.99999)],
            ..SloConfig::default()
        };
        let mut a_t = SloTracker::new(tight, 1);
        close(&mut a_t, "db003", 0, 0, 10);
        let mut b_t = SloTracker::new(SloConfig::default(), 1);
        close(&mut b_t, "db003", 1, 0, 10);
        let horizon = SimDuration::from_days(1);
        let mut a = a_t.report(horizon);
        let b = b_t.report(horizon);
        let err = a.merge(&b).unwrap_err();
        assert!(
            err.contains("per-service target mismatch"),
            "rows for one key must share a budget line: {err}"
        );
    }

    #[test]
    fn empty_tracker_reports_perfect_availability() {
        let t = SloTracker::new(SloConfig::default(), 3);
        let r = t.report(SimDuration::from_days(1));
        assert!(r.services.is_empty());
        assert_eq!(r.total_downtime_secs(), 0);
        assert!((r.fleet_availability() - 1.0).abs() < 1e-12);
    }
}
