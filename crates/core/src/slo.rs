//! The online QoS observatory: per-service availability budgets,
//! MTTR, and windowed error-budget burn rate, maintained **during**
//! `World::run` instead of reconstructed post-hoc from the ledger.
//!
//! The paper's headline claim is an availability number — 99.99% after
//! deploying intelliagents — so the reproduction treats availability as
//! an explicit SLO: every incident charges its downtime to a service
//! key (service name, hostname, or infrastructure domain), the tracker
//! keeps the remaining downtime budget against the target, and a
//! windowed burn-rate check fires an `SloAlert` the moment a service
//! consumes budget faster than the configured multiple of its
//! sustainable rate — the Google-SRE-style fast-burn page, evaluated
//! online at incident close.
//!
//! Everything here is simulation-time arithmetic over ledger events:
//! deterministic, allocation-light, and always on (a run without
//! incidents costs nothing beyond the struct).

use std::collections::BTreeMap;

use intelliqos_simkern::{SimDuration, SimTime};

use crate::downtime::{json_str, IncidentId};

/// Availability-SLO parameters.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Availability target in `(0, 1)`; the paper claims 99.99%.
    pub availability_target: f64,
    /// Burn-rate evaluation window.
    pub window: SimDuration,
    /// Alert when the window's downtime exceeds `burn_threshold ×` the
    /// budget the window is allotted at the target rate. At 99.99% a
    /// 24 h window earns ~8.6 s of budget, so the default of 100 fires
    /// on ≳14 min of downtime per day — routine for hours-long manual
    /// repairs, rare for minutes-long agent heals.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability_target: 0.9999,
            window: SimDuration::from_hours(24),
            burn_threshold: 100.0,
        }
    }
}

/// One fast-burn alert: `service` consumed its error budget at
/// `burn_rate ×` the sustainable rate over the configured window ending
/// at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// When the alert fired (the incident-close instant).
    pub at: SimTime,
    /// The service (or host / domain) burning budget.
    pub service: String,
    /// The incident whose close triggered the evaluation.
    pub incident: IncidentId,
    /// Window downtime ÷ window budget.
    pub burn_rate: f64,
}

#[derive(Debug, Clone, Default)]
struct ServiceSlo {
    downtime: SimDuration,
    incidents: u64,
    repair: SimDuration,
    burn_alerts: u64,
    /// Closed downtime episodes `(onset, restored)` still inside the
    /// burn window; pruned as the window slides.
    episodes: Vec<(SimTime, SimTime)>,
}

/// Online SLO state for one run. Fed by the world at every incident
/// close; queried for the end-of-run report.
#[derive(Debug, Clone)]
pub struct SloTracker {
    cfg: SloConfig,
    fleet_size: u64,
    services: BTreeMap<String, ServiceSlo>,
    alerts: Vec<SloAlert>,
}

impl SloTracker {
    /// A tracker for a fleet of `fleet_size` servers (the denominator
    /// of the fleet-wide availability figure).
    pub fn new(cfg: SloConfig, fleet_size: u64) -> Self {
        SloTracker {
            cfg,
            fleet_size: fleet_size.max(1),
            services: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Account one closed incident: charge `restored - onset` of
    /// downtime to `service`, update MTTR, slide the burn window, and
    /// return the fast-burn alert if the window blew its threshold.
    pub fn on_close(
        &mut self,
        service: &str,
        incident: IncidentId,
        onset: SimTime,
        detected: SimTime,
        restored: SimTime,
    ) -> Option<SloAlert> {
        let st = self.services.entry(service.to_string()).or_default();
        st.incidents += 1;
        st.downtime += restored.since(onset);
        st.repair += restored.since(detected);
        st.episodes.push((onset, restored));

        // Window downtime: overlap of every recent episode with
        // [restored - window, restored].
        let wstart =
            SimTime::from_secs(restored.as_secs().saturating_sub(self.cfg.window.as_secs()));
        st.episodes.retain(|&(_, end)| end >= wstart);
        // Episodes close in time order, so every retained end is within
        // the window; the overlap is end minus the clamped start.
        let window_downtime: u64 = st
            .episodes
            .iter()
            .map(|&(s, e)| e.as_secs() - s.as_secs().max(wstart.as_secs()))
            .sum();
        let budget = (1.0 - self.cfg.availability_target) * self.cfg.window.as_secs() as f64;
        if budget <= 0.0 {
            return None;
        }
        let burn_rate = window_downtime as f64 / budget;
        if burn_rate >= self.cfg.burn_threshold {
            st.burn_alerts += 1;
            let alert = SloAlert {
                at: restored,
                service: service.to_string(),
                incident,
                burn_rate,
            };
            self.alerts.push(alert.clone());
            Some(alert)
        } else {
            None
        }
    }

    /// Every fast-burn alert fired so far, in firing order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Snapshot the availability report for a run of length `horizon`.
    pub fn report(&self, horizon: SimDuration) -> SloReport {
        let horizon_secs = horizon.as_secs().max(1);
        let budget = (1.0 - self.cfg.availability_target) * horizon_secs as f64;
        let services = self
            .services
            .iter()
            .map(|(name, st)| {
                let downtime_secs = st.downtime.as_secs();
                let availability =
                    (1.0 - downtime_secs as f64 / horizon_secs as f64).clamp(0.0, 1.0);
                ServiceSloRow {
                    service: name.clone(),
                    incidents: st.incidents,
                    downtime_secs,
                    availability,
                    budget_secs: budget,
                    budget_remaining_secs: budget - downtime_secs as f64,
                    repair_secs: st.repair.as_secs(),
                    mttr_secs: if st.incidents == 0 {
                        0.0
                    } else {
                        st.repair.as_secs() as f64 / st.incidents as f64
                    },
                    burn_alerts: st.burn_alerts,
                }
            })
            .collect();
        SloReport {
            target: self.cfg.availability_target,
            window_secs: self.cfg.window.as_secs(),
            burn_threshold: self.cfg.burn_threshold,
            horizon_secs,
            fleet_size: self.fleet_size,
            services,
            alerts: self.alerts.clone(),
        }
    }
}

/// One service's availability accounting over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSloRow {
    /// The accounting key (service name, hostname, or domain).
    pub service: String,
    /// Closed incidents charged to it.
    pub incidents: u64,
    /// Total downtime charged, seconds.
    pub downtime_secs: u64,
    /// `1 - downtime / horizon`, clamped to `[0, 1]`.
    pub availability: f64,
    /// The downtime budget the horizon allows at the target.
    pub budget_secs: f64,
    /// Budget minus charged downtime (negative = budget blown).
    pub budget_remaining_secs: f64,
    /// Total repair time (`restored - detected` summed), seconds. The
    /// integer MTTR numerator, kept so merged reports can recompute
    /// MTTR exactly instead of averaging averages.
    pub repair_secs: u64,
    /// Mean time to repair: mean of `restored - detected`, seconds.
    pub mttr_secs: f64,
    /// Fast-burn alerts fired for this service.
    pub burn_alerts: u64,
}

/// The schema-validated `slo_report` document exported next to every
/// figure's evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Availability target the budgets are computed against.
    pub target: f64,
    /// Burn-rate window, seconds.
    pub window_secs: u64,
    /// Burn-rate alert threshold.
    pub burn_threshold: f64,
    /// Run length, seconds.
    pub horizon_secs: u64,
    /// Servers in the fleet (denominator of the fleet availability).
    pub fleet_size: u64,
    /// Per-service rows, key order.
    pub services: Vec<ServiceSloRow>,
    /// Every alert fired, in firing order.
    pub alerts: Vec<SloAlert>,
}

impl SloReport {
    /// Total downtime across every service key, seconds.
    pub fn total_downtime_secs(&self) -> u64 {
        self.services.iter().map(|s| s.downtime_secs).sum()
    }

    /// Fleet-wide availability: `1 - total_downtime / (fleet × horizon)`
    /// — the figure comparable to the paper's 99.99% claim, where one
    /// server-incident charges only its share of the fleet's uptime.
    pub fn fleet_availability(&self) -> f64 {
        let denom = (self.fleet_size * self.horizon_secs) as f64;
        (1.0 - self.total_downtime_secs() as f64 / denom).clamp(0.0, 1.0)
    }

    /// Serialise as JSON. Hand-rolled (no serde in the tree); validated
    /// by `evidence_check`.
    pub fn to_json(&self) -> String {
        self.json_doc(None)
    }

    /// Serialise with run provenance (seed + management mode) — the
    /// shape written into `results/evidence/`.
    pub fn to_json_with_run(&self, seed: u64, mode: &str) -> String {
        self.json_doc(Some((seed, mode)))
    }

    fn json_doc(&self, run: Option<(u64, &str)>) -> String {
        let mut out = String::from("{\n  \"report\": \"slo\",\n");
        if let Some((seed, mode)) = run {
            out.push_str(&format!(
                "  \"seed\": {},\n  \"mode\": {},\n",
                seed,
                json_str(mode)
            ));
        }
        out.push_str(&format!(
            "  \"target\": {:.6},\n  \"window_secs\": {},\n  \"burn_threshold\": {:.2},\n",
            self.target, self.window_secs, self.burn_threshold
        ));
        out.push_str(&format!(
            "  \"horizon_secs\": {},\n  \"fleet_size\": {},\n",
            self.horizon_secs, self.fleet_size
        ));
        out.push_str(&format!(
            "  \"total_downtime_secs\": {},\n  \"fleet_availability\": {:.8},\n",
            self.total_downtime_secs(),
            self.fleet_availability()
        ));
        out.push_str("  \"services\": [");
        for (i, s) in self.services.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"service\": {}, \"incidents\": {}, \"downtime_secs\": {}, \
                 \"availability\": {:.8}, \"budget_secs\": {:.2}, \
                 \"budget_remaining_secs\": {:.2}, \"repair_secs\": {}, \
                 \"mttr_secs\": {:.2}, \"burn_alerts\": {}}}",
                json_str(&s.service),
                s.incidents,
                s.downtime_secs,
                s.availability,
                s.budget_secs,
                s.budget_remaining_secs,
                s.repair_secs,
                s.mttr_secs,
                s.burn_alerts
            ));
        }
        if !self.services.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"at\": {}, \"service\": {}, \"incident\": {}, \"burn_rate\": {:.2}}}",
                a.at.as_secs(),
                json_str(&a.service),
                a.incident.0,
                a.burn_rate
            ));
        }
        if !self.alerts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Merge `other` into `self` — the fleet-assembly operation: rows
    /// for the same service key combine as if one tracker had accounted
    /// every incident. Downtime, repair time, incident and alert counts
    /// add as integers; availability, budgets, and MTTR are then
    /// recomputed from the merged integers, so the result is exactly
    /// the single-ledger computation, not an average of averages.
    /// Disjoint services interleave in key order, fleet sizes add, and
    /// the alert streams merge in firing order. The two reports must
    /// describe the same SLO regime — identical target, window, burn
    /// threshold, and horizon — because the derived numbers are only
    /// comparable against one budget line.
    pub fn merge(&mut self, other: &SloReport) -> Result<(), String> {
        if self.target.to_bits() != other.target.to_bits()
            || self.window_secs != other.window_secs
            || self.burn_threshold.to_bits() != other.burn_threshold.to_bits()
        {
            return Err(format!(
                "SLO config mismatch: target {} vs {}, window {} vs {}, threshold {} vs {}",
                self.target,
                other.target,
                self.window_secs,
                other.window_secs,
                self.burn_threshold,
                other.burn_threshold
            ));
        }
        if self.horizon_secs != other.horizon_secs {
            return Err(format!(
                "horizon mismatch: {} vs {} seconds",
                self.horizon_secs, other.horizon_secs
            ));
        }
        self.fleet_size += other.fleet_size;
        for row in &other.services {
            match self
                .services
                .binary_search_by(|r| r.service.cmp(&row.service))
            {
                Ok(i) => {
                    let r = &mut self.services[i];
                    r.incidents += row.incidents;
                    r.downtime_secs += row.downtime_secs;
                    r.repair_secs += row.repair_secs;
                    r.burn_alerts += row.burn_alerts;
                }
                Err(i) => self.services.insert(i, row.clone()),
            }
        }
        let horizon = self.horizon_secs.max(1) as f64;
        let budget = (1.0 - self.target) * horizon;
        for r in &mut self.services {
            r.availability = (1.0 - r.downtime_secs as f64 / horizon).clamp(0.0, 1.0);
            r.budget_secs = budget;
            r.budget_remaining_secs = budget - r.downtime_secs as f64;
            r.mttr_secs = if r.incidents == 0 {
                0.0
            } else {
                r.repair_secs as f64 / r.incidents as f64
            };
        }
        let mut alerts = Vec::with_capacity(self.alerts.len() + other.alerts.len());
        alerts.extend(self.alerts.iter().cloned());
        alerts.extend(other.alerts.iter().cloned());
        alerts.sort_by(|a, b| {
            (a.at, &a.service, a.incident.0).cmp(&(b.at, &b.service, b.incident.0))
        });
        self.alerts = alerts;
        Ok(())
    }

    /// Short human summary for triage output.
    pub fn render_summary(&self) -> String {
        let blown = self
            .services
            .iter()
            .filter(|s| s.budget_remaining_secs < 0.0)
            .count();
        format!(
            "slo: fleet availability {:.5} (target {:.4}), {} service key(s), \
             {} over budget, {} burn alert(s)",
            self.fleet_availability(),
            self.target,
            self.services.len(),
            blown,
            self.alerts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(
        t: &mut SloTracker,
        svc: &str,
        id: u64,
        onset_s: u64,
        restored_s: u64,
    ) -> Option<SloAlert> {
        t.on_close(
            svc,
            IncidentId(id),
            SimTime::from_secs(onset_s),
            SimTime::from_secs(onset_s),
            SimTime::from_secs(restored_s),
        )
    }

    #[test]
    fn downtime_and_mttr_accumulate_per_service() {
        let mut t = SloTracker::new(SloConfig::default(), 10);
        close(&mut t, "db003", 0, 100, 400);
        close(&mut t, "db003", 1, 10_000, 10_600);
        close(&mut t, "web001", 2, 50, 150);
        let r = t.report(SimDuration::from_days(1));
        assert_eq!(r.services.len(), 2);
        let db = r.services.iter().find(|s| s.service == "db003").unwrap();
        assert_eq!(db.incidents, 2);
        assert_eq!(db.downtime_secs, 900);
        assert!((db.mttr_secs - 450.0).abs() < 1e-9);
        assert!((db.availability - (1.0 - 900.0 / 86_400.0)).abs() < 1e-12);
        assert_eq!(r.total_downtime_secs(), 1000);
        // Fleet availability spreads downtime over the whole fleet.
        assert!((r.fleet_availability() - (1.0 - 1000.0 / (10.0 * 86_400.0))).abs() < 1e-12);
    }

    #[test]
    fn fast_burn_fires_over_threshold_only() {
        let cfg = SloConfig {
            availability_target: 0.9999,
            window: SimDuration::from_hours(24),
            burn_threshold: 100.0,
        };
        // Budget per 24 h window: 8.64 s; threshold: 864 s of downtime.
        let mut t = SloTracker::new(cfg, 1);
        assert!(close(&mut t, "web001", 0, 1000, 1500).is_none()); // 500 s: under
        let alert = close(&mut t, "web001", 1, 2000, 2500); // window now 1000 s
        let alert = alert.expect("second incident pushes the window over");
        assert!((alert.burn_rate - 1000.0 / 8.64).abs() < 1e-6);
        assert_eq!(alert.incident, IncidentId(1));
        assert_eq!(t.alerts().len(), 1);
        let r = t.report(SimDuration::from_days(1));
        assert_eq!(r.services[0].burn_alerts, 1);
    }

    #[test]
    fn burn_window_slides_past_old_episodes() {
        let cfg = SloConfig {
            availability_target: 0.9999,
            window: SimDuration::from_hours(1),
            burn_threshold: 100.0, // 0.36 s budget/h → 36 s threshold
        };
        let mut t = SloTracker::new(cfg, 1);
        assert!(close(&mut t, "a", 0, 0, 100).is_some());
        // Two days later the old episode is out of the window; 30 s of
        // fresh downtime stays under the 36 s threshold.
        let two_days = 2 * 86_400;
        assert!(close(&mut t, "a", 1, two_days, two_days + 30).is_none());
        // Total downtime still counts both episodes.
        let r = t.report(SimDuration::from_days(3));
        assert_eq!(r.services[0].downtime_secs, 130);
    }

    #[test]
    fn report_json_is_balanced_and_tagged() {
        let mut t = SloTracker::new(SloConfig::default(), 5);
        close(&mut t, "db003", 0, 0, 7200); // 2 h: alert at default threshold
        let r = t.report(SimDuration::from_days(1));
        let json = r.to_json();
        assert!(json.contains("\"report\": \"slo\""));
        assert!(json.contains("\"service\": \"db003\""));
        assert!(json.contains("\"burn_rate\""));
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        assert!(r.render_summary().contains("1 over budget"));
    }

    fn close_det(
        t: &mut SloTracker,
        svc: &str,
        id: u64,
        onset_s: u64,
        detected_s: u64,
        restored_s: u64,
    ) {
        t.on_close(
            svc,
            IncidentId(id),
            SimTime::from_secs(onset_s),
            SimTime::from_secs(detected_s),
            SimTime::from_secs(restored_s),
        );
    }

    #[test]
    fn merged_report_equals_single_ledger_computation() {
        // The same incident stream fed whole into one tracker, and
        // split across two trackers whose reports are then merged: the
        // per-service availability and MTTR must match exactly (bit
        // equality, not epsilon), because merge recomputes them from
        // the summed integer numerators.
        let incidents: [(&str, u64, u64, u64); 7] = [
            ("db003", 100, 130, 400),
            ("web001", 50, 55, 150),
            ("db003", 10_000, 10_200, 10_600),
            ("lsf", 2_000, 2_001, 2_047),
            ("web001", 40_000, 40_010, 41_000),
            ("db003", 80_000, 80_003, 80_900),
            ("mail", 5, 6, 7),
        ];
        let mut whole = SloTracker::new(SloConfig::default(), 10);
        let mut left = SloTracker::new(SloConfig::default(), 6);
        let mut right = SloTracker::new(SloConfig::default(), 4);
        for (i, &(svc, onset, det, rest)) in incidents.iter().enumerate() {
            close_det(&mut whole, svc, i as u64, onset, det, rest);
            let half = if i % 2 == 0 { &mut left } else { &mut right };
            close_det(half, svc, i as u64, onset, det, rest);
        }
        let horizon = SimDuration::from_days(2);
        let single = whole.report(horizon);
        let mut merged = left.report(horizon);
        merged.merge(&right.report(horizon)).unwrap();

        assert_eq!(merged.fleet_size, single.fleet_size);
        assert_eq!(merged.services.len(), single.services.len());
        for (m, s) in merged.services.iter().zip(&single.services) {
            assert_eq!(m.service, s.service);
            assert_eq!(m.incidents, s.incidents);
            assert_eq!(m.downtime_secs, s.downtime_secs);
            assert_eq!(m.repair_secs, s.repair_secs);
            assert_eq!(
                m.availability.to_bits(),
                s.availability.to_bits(),
                "availability for {} must merge exactly",
                m.service
            );
            assert_eq!(
                m.mttr_secs.to_bits(),
                s.mttr_secs.to_bits(),
                "MTTR for {} must merge exactly",
                m.service
            );
            assert_eq!(m.budget_secs.to_bits(), s.budget_secs.to_bits());
            assert_eq!(
                m.budget_remaining_secs.to_bits(),
                s.budget_remaining_secs.to_bits()
            );
        }
        assert_eq!(merged.total_downtime_secs(), single.total_downtime_secs());
        assert_eq!(
            merged.fleet_availability().to_bits(),
            single.fleet_availability().to_bits()
        );
    }

    #[test]
    fn merge_interleaves_disjoint_services_in_key_order() {
        let mut a = SloTracker::new(SloConfig::default(), 1);
        close(&mut a, "web001", 0, 0, 10);
        close(&mut a, "db003", 1, 0, 10);
        let mut b = SloTracker::new(SloConfig::default(), 1);
        close(&mut b, "lsf", 2, 0, 10);
        close(&mut b, "admin", 3, 0, 10);
        let horizon = SimDuration::from_days(1);
        let mut merged = a.report(horizon);
        merged.merge(&b.report(horizon)).unwrap();
        let keys: Vec<&str> = merged.services.iter().map(|s| s.service.as_str()).collect();
        assert_eq!(keys, ["admin", "db003", "lsf", "web001"]);
        assert_eq!(merged.fleet_size, 2);
    }

    #[test]
    fn merge_rejects_mismatched_regimes() {
        let t = SloTracker::new(SloConfig::default(), 1);
        let mut a = t.report(SimDuration::from_days(1));
        let b = t.report(SimDuration::from_days(2));
        assert!(a.merge(&b).is_err(), "horizon mismatch must be rejected");
        let other_cfg = SloConfig {
            availability_target: 0.999,
            ..SloConfig::default()
        };
        let c = SloTracker::new(other_cfg, 1).report(SimDuration::from_days(1));
        assert!(a.merge(&c).is_err(), "target mismatch must be rejected");
    }

    #[test]
    fn empty_tracker_reports_perfect_availability() {
        let t = SloTracker::new(SloConfig::default(), 3);
        let r = t.report(SimDuration::from_days(1));
        assert!(r.services.is_empty());
        assert_eq!(r.total_downtime_secs(), 0);
        assert!((r.fleet_availability() - 1.0).abs() < 1e-12);
    }
}
