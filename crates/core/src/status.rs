//! The **status intelliagent**: DLSP generation.
//!
//! §3.4: "Each local server in the datacentre is responsible for
//! 'knowing' and taking care of its own resources and services. Its
//! local status intelliagent is 'awakened' by the Unix cron and compiles
//! dynamically its local DLSP." The profile is written both to the local
//! disk and (by the world driver) shipped to the administration servers'
//! shared pool over the private agent network.

use intelliqos_simkern::{SimRng, SimTime};

use intelliqos_cluster::server::Server;

use intelliqos_ontology::dlsp::{Dlsp, DlspService};

use intelliqos_services::probe::{probe, ProbeResult};
use intelliqos_services::registry::ServiceRegistry;

use crate::agents::AgentKind;
use crate::flags::{clear_flags, write_flag, FlagOutcome};

/// Where a server's freshest DLSP lives on its local disk.
pub fn dlsp_path(hostname: &str) -> String {
    format!("/logs/intelliagents/dlsp/{hostname}.dlsp")
}

/// Compile the DLSP for one server: observe the OS, probe every hosted
/// service, and write the flat-ASCII profile to the local disk.
pub fn run_status_agent(
    server: &mut Server,
    registry: &ServiceRegistry,
    rng: &mut SimRng,
    now: SimTime,
) -> Dlsp {
    clear_flags(&mut server.fs, AgentKind::Status.name());
    let obs = server.observe(rng);
    let (load_score, free_mem_mb, cpu_idle_pct) = match &obs {
        Some(o) => (o.load_score(), o.free_mem_mb, o.cpu_idle_pct),
        None => (1.5, 0.0, 0.0), // a dead box profiles as fully loaded
    };
    let mut services = Vec::new();
    for svc in registry.on_server(server.id) {
        let result = probe(svc, server, rng);
        let (status, latency_ms) = match result {
            ProbeResult::Ok { latency_ms } => ("running", Some(latency_ms)),
            ProbeResult::Timeout => ("timeout", None),
            ProbeResult::ConnectionRefused => ("refused", None),
            ProbeResult::QueryError => ("query-error", None),
        };
        services.push(DlspService {
            name: svc.spec.name.clone(),
            app_type: svc.spec.kind.type_str().to_string(),
            version: svc.spec.version.clone(),
            status: status.to_string(),
            latency_ms,
        });
    }
    let spec = server.effective_spec();
    let dlsp = Dlsp {
        hostname: server.hostname.clone(),
        generated_at_secs: now.as_secs(),
        model: spec.model.to_string(),
        os: server.os().to_string(),
        cpus: spec.cpus,
        ram_gb: spec.ram_gb,
        load_score,
        free_mem_mb,
        cpu_idle_pct,
        users: server.users_logged_in,
        location: server.site.location.clone(),
        site: server.site.name.clone(),
        services,
    };
    // Self-maintenance: replace the previous profile ("removes … old
    // local dynamic service profiles").
    let _ = server
        .fs
        .write(dlsp_path(&server.hostname), dlsp.to_doc().to_lines(), now);
    let all_ok = dlsp.all_services_running();
    let _ = write_flag(
        &mut server.fs,
        AgentKind::Status.name(),
        if all_ok {
            FlagOutcome::Ok
        } else {
            FlagOutcome::FaultDetected
        },
        None,
        now,
    );
    dlsp
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_services::spec::{DbEngine, ServiceSpec};

    fn setup() -> (Server, ServiceRegistry) {
        let mut server = Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN-DC1"),
        );
        server.users_logged_in = 4;
        let mut reg = ServiceRegistry::new();
        let id = reg.deploy(
            ServiceSpec::database("trades-db", DbEngine::Oracle),
            ServerId(0),
        );
        reg.start(id, &mut server, SimTime::ZERO).unwrap();
        reg.complete_pending_starts(SimTime::from_secs(1600));
        (server, reg)
    }

    #[test]
    fn dlsp_reflects_healthy_host() {
        let (mut server, reg) = setup();
        let mut rng = SimRng::stream(2, "status");
        let dlsp = run_status_agent(&mut server, &reg, &mut rng, SimTime::from_mins(15));
        assert_eq!(dlsp.hostname, "db000");
        assert_eq!(dlsp.generated_at_secs, 900);
        assert_eq!(dlsp.users, 4);
        assert_eq!(dlsp.services.len(), 1);
        assert!(dlsp.all_services_running());
        assert!(dlsp.services[0].latency_ms.is_some());
        assert_eq!(dlsp.site, "LDN-DC1");
        // Profile written to the local disk in the flat format.
        let file = server.fs.read(&dlsp_path("db000")).unwrap();
        let parsed = Dlsp::parse_text(&file.lines.join("\n")).unwrap();
        assert_eq!(parsed.hostname, "db000");
    }

    #[test]
    fn dlsp_reports_faulted_services() {
        let (mut server, mut reg) = setup();
        let id = reg.ids_on_server(ServerId(0))[0];
        reg.get_mut(id).unwrap().hang();
        let mut rng = SimRng::stream(2, "status");
        let dlsp = run_status_agent(&mut server, &reg, &mut rng, SimTime::from_mins(15));
        assert_eq!(dlsp.services[0].status, "timeout");
        assert!(!dlsp.all_services_running());
        let flags = crate::flags::read_flags(&server.fs, "intelliagent_status");
        assert_eq!(flags[0].outcome, FlagOutcome::FaultDetected);
    }

    #[test]
    fn profile_is_replaced_not_accumulated() {
        let (mut server, reg) = setup();
        let mut rng = SimRng::stream(2, "status");
        run_status_agent(&mut server, &reg, &mut rng, SimTime::from_mins(15));
        run_status_agent(&mut server, &reg, &mut rng, SimTime::from_mins(30));
        let files = server.fs.list("/logs/intelliagents/dlsp");
        assert_eq!(files.len(), 1);
        let file = server.fs.read(&dlsp_path("db000")).unwrap();
        let parsed = Dlsp::parse_text(&file.lines.join("\n")).unwrap();
        assert_eq!(parsed.generated_at_secs, 1800);
    }

    #[test]
    fn dead_host_profiles_as_loaded() {
        let (mut server, reg) = setup();
        server.crash();
        let mut rng = SimRng::stream(2, "status");
        // (In reality no agent runs on a dead host; the world driver
        // skips them. The function itself must still be total.)
        let dlsp = run_status_agent(&mut server, &reg, &mut rng, SimTime::from_mins(15));
        assert_eq!(dlsp.load_score, 1.5);
        assert_eq!(dlsp.services[0].status, "timeout");
    }
}
