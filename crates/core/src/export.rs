//! JSON run export: incident ledger + structured trace in one document.
//!
//! Hand-rolled (the build environment carries no serde); the shape is
//! stable and consumed by the `triage` bench binary and
//! `scripts/triage.sh`:
//!
//! ```json
//! {
//!   "seed": 42,
//!   "mode": "Intelliagents",
//!   "ledger": { "incidents": [...], "totals": {...}, ... },
//!   "trace": { "enabled": true, "total": 123, "evicted": 0,
//!              "counters": {"fault": 9, ...},
//!              "events": [{"seq":0,"at":0,"subsystem":"kern","code":"run-start",...}, ...] },
//!   "profile": { "enabled": true, "wall_ns": ..., "subsystems": [...], ... }
//! }
//! ```

use crate::downtime::json_str;
use crate::profile::ProfileReport;
use crate::world::World;

/// Serialise a (typically finished) world's ledger, trace, and profile
/// as JSON.
pub fn run_export_json(world: &World) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("\"seed\": {},\n", world.cfg.seed));
    out.push_str(&format!(
        "\"mode\": {},\n",
        json_str(&format!("{:?}", world.cfg.mode))
    ));
    out.push_str("\"ledger\": ");
    out.push_str(world.ledger.to_json().trim_end());
    out.push_str(",\n\"trace\": {\n");
    let t = &world.trace;
    out.push_str(&format!("  \"enabled\": {},\n", t.is_enabled()));
    out.push_str(&format!("  \"sink\": {},\n", json_str(t.sink_kind())));
    out.push_str(&format!("  \"total\": {},\n", t.total()));
    out.push_str(&format!("  \"evicted\": {},\n", t.evicted()));
    out.push_str(&format!("  \"dropped\": {},\n", t.dropped()));
    out.push_str(&format!("  \"filtered\": {},\n", t.filtered()));
    out.push_str("  \"dropped_by_subsystem\": {");
    for (i, (tag, n)) in t.dropped_by_subsystem().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(tag), n));
    }
    out.push_str("},\n  \"counters\": {");
    let counters = t.counters();
    for (i, (tag, n)) in counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(tag), n));
    }
    out.push_str("},\n  \"events\": [\n");
    // Each event is the same JSONL object the spill sink writes, so the
    // export carries correlation ids and one parser serves both the
    // flight recording and the in-document trace.
    for (i, ev) in t.events().iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(&ev.render_jsonl());
    }
    out.push_str("\n  ]\n},\n\"profile\": ");
    out.push_str(&ProfileReport::from_world(world).to_json());
    out.push_str("\n}\n");
    out
}

/// Validate a trace spill directory: the manifest parses, every listed
/// chunk exists with exactly the promised number of newline-terminated
/// JSONL records, each record parses and carries the event fields, and
/// the chunk totals agree with the manifest's `total`.
///
/// Returns human-readable findings; an empty vector means the spill is
/// complete and well-formed. A truncated final chunk (killed run,
/// full disk) surfaces as a record-count mismatch or a missing trailing
/// newline.
pub fn validate_spill_dir(dir: &std::path::Path) -> Vec<String> {
    use intelliqos_simkern::trace::SPILL_MANIFEST;

    let mut findings = Vec::new();
    let manifest_path = dir.join(SPILL_MANIFEST);
    let manifest_text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            findings.push(format!("{}: unreadable: {e}", manifest_path.display()));
            return findings;
        }
    };
    let manifest = match crate::jsonv::parse(&manifest_text) {
        Ok(v) => v,
        Err(e) => {
            findings.push(format!("{}: bad JSON: {e}", manifest_path.display()));
            return findings;
        }
    };
    if manifest.get("report").and_then(|v| v.as_str()) != Some("trace_spill") {
        findings.push(format!(
            "{}: missing report=trace_spill tag",
            manifest_path.display()
        ));
    }
    // A manifest that omits io_errors is as suspect as one that admits
    // them: the field is the writer's own loss accounting, and its
    // absence means the spill came from something other than SpillSink.
    match manifest.get("io_errors").and_then(|v| v.as_u64()) {
        Some(0) => {}
        Some(io_errors) => findings.push(format!("manifest reports {io_errors} io error(s)")),
        None => findings.push(format!(
            "{}: manifest missing io_errors count",
            manifest_path.display()
        )),
    }
    let total = manifest.get("total").and_then(|v| v.as_u64());
    let Some(chunks) = manifest.get("chunks").and_then(|v| v.as_arr()) else {
        findings.push(format!("{}: no chunks array", manifest_path.display()));
        return findings;
    };
    let mut counted = 0u64;
    for chunk in chunks {
        let Some(file) = chunk.get("file").and_then(|v| v.as_str()) else {
            findings.push("chunk entry without a file name".to_string());
            continue;
        };
        let expected = chunk.get("records").and_then(|v| v.as_u64()).unwrap_or(0);
        let path = dir.join(file);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                findings.push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        if !text.is_empty() && !text.ends_with('\n') {
            findings.push(format!(
                "{}: truncated (no trailing newline)",
                path.display()
            ));
        }
        let mut records = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            records += 1;
            match crate::jsonv::parse(line) {
                Ok(ev) => {
                    for key in ["seq", "at", "subsystem", "code"] {
                        if ev.get(key).is_none() {
                            findings.push(format!(
                                "{}:{}: record missing {key}",
                                path.display(),
                                lineno + 1
                            ));
                        }
                    }
                }
                Err(e) => {
                    findings.push(format!("{}:{}: bad JSONL: {e}", path.display(), lineno + 1))
                }
            }
        }
        if records != expected {
            findings.push(format!(
                "{}: {records} record(s) on disk but manifest promises {expected}",
                path.display()
            ));
        }
        counted += records;
    }
    if let Some(total) = total {
        if counted != total {
            findings.push(format!(
                "manifest total {total} but chunks hold {counted} record(s)"
            ));
        }
    } else {
        findings.push(format!("{}: no total field", manifest_path.display()));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ManagementMode, ScenarioConfig};
    use intelliqos_simkern::SimDuration;

    #[test]
    fn export_is_balanced_and_carries_both_layers() {
        let mut cfg = ScenarioConfig::small(42, ManagementMode::Intelliagents);
        cfg.horizon = SimDuration::from_days(3);
        let mut world = World::build(cfg).enable_trace();
        world.run_to_end();
        let json = run_export_json(&world);
        // Braces and brackets balance (strings are escaped, so naive
        // depth counting outside quotes is sound).
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
        assert!(json.contains("\"ledger\""));
        assert!(json.contains("\"trace\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("run-start"));
    }

    fn run(seed: u64, profiled: bool) -> World {
        let mut cfg = ScenarioConfig::small(seed, ManagementMode::Intelliagents);
        cfg.horizon = SimDuration::from_days(2);
        let mut world = World::build(cfg);
        if profiled {
            world = world.enable_trace().enable_profile();
        }
        world.run_to_end();
        world
    }

    /// The exported document, read back through the in-tree JSON
    /// reader, agrees with the live registry: every counter, every
    /// per-kind count, and the per-kind latency percentiles survive the
    /// round trip exactly.
    #[test]
    fn export_round_trips_through_the_json_reader() {
        let world = run(42, true);
        let doc = crate::jsonv::parse(&run_export_json(&world)).expect("export parses");

        let profile = doc.get("profile").expect("profile section");
        assert_eq!(profile.get("enabled").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            profile.get("events_processed").and_then(|v| v.as_u64()),
            Some(world.metrics.counter("events.processed"))
        );

        // Every registry counter appears verbatim.
        let counters = profile.get("counters").expect("counters object");
        for (name, value) in world.metrics.counters() {
            assert_eq!(
                counters.get(name).and_then(|v| v.as_u64()),
                Some(value),
                "counter {name}"
            );
        }

        // Per-kind dispatch counts and percentiles match the profiler.
        let kinds = profile
            .get("kinds")
            .and_then(|v| v.as_arr())
            .expect("kinds");
        assert!(!kinds.is_empty());
        for k in kinds {
            let name = k.get("kind").and_then(|v| v.as_str()).expect("kind name");
            let hist = world.profiler.span(name).expect("span exists");
            let s = hist.summary();
            assert_eq!(k.get("count").and_then(|v| v.as_u64()), Some(s.count));
            let ns = k.get("ns").expect("ns summary");
            assert_eq!(ns.get("p50_ns").and_then(|v| v.as_u64()), Some(s.p50));
            assert_eq!(ns.get("p99_ns").and_then(|v| v.as_u64()), Some(s.p99));
            assert_eq!(ns.get("max_ns").and_then(|v| v.as_u64()), Some(s.max));
        }

        // Subsystem shares are a partition of the accounted time.
        let subs = profile
            .get("subsystems")
            .and_then(|v| v.as_arr())
            .expect("subsystems");
        let total: f64 = subs
            .iter()
            .filter_map(|s| s.get("share").and_then(|v| v.as_f64()))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");

        // The ledger side round-trips too: incident count matches.
        let incidents = doc
            .get("ledger")
            .and_then(|l| l.get("incidents"))
            .and_then(|v| v.as_arr())
            .expect("ledger incidents");
        assert_eq!(incidents.len(), world.ledger.incidents().count());
    }

    /// Instrumentation is observation only: the same scenario run with
    /// and without the profiler produces the identical ledger document,
    /// and the unprofiled export says so (`"enabled": false`).
    #[test]
    fn unprofiled_run_exports_identical_ledger_and_disabled_profile() {
        let plain = run(7, false);
        let profiled = run(7, true);
        assert_eq!(plain.ledger.to_json(), profiled.ledger.to_json());

        let doc = crate::jsonv::parse(&run_export_json(&plain)).expect("export parses");
        let profile = doc.get("profile").expect("profile section");
        assert_eq!(
            profile.get("enabled").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert_eq!(
            profile.get("events_processed").and_then(|v| v.as_u64()),
            Some(0)
        );
        assert_eq!(
            profile
                .get("kinds")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(0)
        );
    }

    fn spill_fixture(name: &str, manifest: &str, chunk: Option<&str>) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("intelliqos-export-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), manifest).unwrap();
        if let Some(text) = chunk {
            std::fs::write(dir.join("chunk-00000.jsonl"), text).unwrap();
        }
        dir
    }

    const GOOD_CHUNK: &str =
        "{\"seq\":0,\"at\":1,\"subsystem\":\"fault\",\"code\":\"inject\",\"detail\":\"x\"}\n";

    #[test]
    fn spill_manifest_with_io_errors_is_a_finding() {
        let dir = spill_fixture(
            "ioerr",
            "{\"report\": \"trace_spill\", \"total\": 1, \"io_errors\": 3,\n \
             \"chunks\": [{\"file\": \"chunk-00000.jsonl\", \"records\": 1}]}\n",
            Some(GOOD_CHUNK),
        );
        let findings = validate_spill_dir(&dir);
        assert!(
            findings.iter().any(|f| f.contains("3 io error(s)")),
            "io_errors must surface: {findings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_manifest_missing_io_errors_is_a_finding() {
        // A spill whose manifest never accounted for write failures is
        // not evidence of a clean recording — absence must not pass.
        let dir = spill_fixture(
            "noioerr",
            "{\"report\": \"trace_spill\", \"total\": 1,\n \
             \"chunks\": [{\"file\": \"chunk-00000.jsonl\", \"records\": 1}]}\n",
            Some(GOOD_CHUNK),
        );
        let findings = validate_spill_dir(&dir);
        assert!(
            findings.iter().any(|f| f.contains("missing io_errors")),
            "missing io_errors must surface: {findings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_spill_manifest_validates_with_no_findings() {
        let dir = spill_fixture(
            "clean",
            "{\"report\": \"trace_spill\", \"total\": 1, \"io_errors\": 0,\n \
             \"chunks\": [{\"file\": \"chunk-00000.jsonl\", \"records\": 1}]}\n",
            Some(GOOD_CHUNK),
        );
        let findings = validate_spill_dir(&dir);
        assert!(findings.is_empty(), "clean spill flagged: {findings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
