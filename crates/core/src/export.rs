//! JSON run export: incident ledger + structured trace in one document.
//!
//! Hand-rolled (the build environment carries no serde); the shape is
//! stable and consumed by the `triage` bench binary and
//! `scripts/triage.sh`:
//!
//! ```json
//! {
//!   "seed": 42,
//!   "mode": "Intelliagents",
//!   "ledger": { "incidents": [...], "totals": {...}, ... },
//!   "trace": { "enabled": true, "total": 123, "evicted": 0,
//!              "counters": {"fault": 9, ...}, "events": ["0|0|kern|run-start|...", ...] }
//! }
//! ```

use crate::downtime::json_str;
use crate::world::World;

/// Serialise a (typically finished) world's ledger and trace as JSON.
pub fn run_export_json(world: &World) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("\"seed\": {},\n", world.cfg.seed));
    out.push_str(&format!(
        "\"mode\": {},\n",
        json_str(&format!("{:?}", world.cfg.mode))
    ));
    out.push_str("\"ledger\": ");
    out.push_str(world.ledger.to_json().trim_end());
    out.push_str(",\n\"trace\": {\n");
    let t = &world.trace;
    out.push_str(&format!("  \"enabled\": {},\n", t.is_enabled()));
    out.push_str(&format!("  \"total\": {},\n", t.total()));
    out.push_str(&format!("  \"evicted\": {},\n", t.evicted()));
    out.push_str("  \"counters\": {");
    let counters = t.counters();
    for (i, (tag, n)) in counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(tag), n));
    }
    out.push_str("},\n  \"events\": [\n");
    let lines = t.render_lines();
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(&json_str(line));
    }
    out.push_str("\n  ]\n}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ManagementMode, ScenarioConfig};
    use intelliqos_simkern::SimDuration;

    #[test]
    fn export_is_balanced_and_carries_both_layers() {
        let mut cfg = ScenarioConfig::small(42, ManagementMode::Intelliagents);
        cfg.horizon = SimDuration::from_days(3);
        let mut world = World::build(cfg).enable_trace();
        world.run_to_end();
        let json = run_export_json(&world);
        // Braces and brackets balance (strings are escaped, so naive
        // depth counting outside quotes is sound).
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
        assert!(json.contains("\"ledger\""));
        assert!(json.contains("\"trace\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("run-start"));
    }
}
