//! Standard causal rule sets for each intelliagent category.
//!
//! §4: "Every time a fault was dealt with manually, we added a new
//! troubleshooting procedure to the intelliagent source code and updated
//! static ontologies accordingly" — these rule sets are the accumulated
//! procedures. Each builder returns a [`RuleEngine`] an agent evaluates
//! against the facts its monitoring stage gathered.

use std::sync::OnceLock;

use intelliqos_ontology::rules::{FactValue, Predicate, RepairAction, Rule, RuleEngine};

/// Cached [`service_rules`] (agents evaluate these millions of times a
/// simulated year; the rule set itself is immutable).
pub fn service_rules_cached() -> &'static RuleEngine {
    static E: OnceLock<RuleEngine> = OnceLock::new();
    E.get_or_init(service_rules)
}

/// Cached [`resource_rules`].
pub fn resource_rules_cached() -> &'static RuleEngine {
    static E: OnceLock<RuleEngine> = OnceLock::new();
    E.get_or_init(resource_rules)
}

/// Cached [`os_net_rules`].
pub fn os_net_rules_cached() -> &'static RuleEngine {
    static E: OnceLock<RuleEngine> = OnceLock::new();
    E.get_or_init(os_net_rules)
}

/// Cached [`hardware_rules`].
pub fn hardware_rules_cached() -> &'static RuleEngine {
    static E: OnceLock<RuleEngine> = OnceLock::new();
    E.get_or_init(hardware_rules)
}

/// Rules for the **service intelliagent** diagnosing one service. Facts
/// it expects:
///
/// * `probe` — text: `ok` / `refused` / `timeout` / `query-error`;
/// * `procs_missing` — number of SLKT process groups missing;
/// * `starting` — flag: the startup script is still running;
/// * `mount_missing` — flag: a required filesystem is not mounted;
/// * `cpu_util` — the host's CPU utilisation fraction;
/// * `service` — text: the service name (interpolated into actions by
///   the caller; rules use the placeholder `$svc`).
pub fn service_rules() -> RuleEngine {
    let mut e = RuleEngine::new();
    e.add_rule(Rule {
        id: "svc-mount-missing".into(),
        when: vec![Predicate::IsTrue("mount_missing".into())],
        assert: vec![],
        cause: Some("required filesystem unmounted".into()),
        actions: vec![
            RepairAction::Remount("$mount".into()),
            RepairAction::RestartService("$svc".into()),
        ],
        priority: 30,
    });
    e.add_rule(Rule {
        id: "svc-crashed".into(),
        when: vec![
            Predicate::TextEq("probe".into(), "refused".into()),
            Predicate::NumGt("procs_missing".into(), 0.0),
            Predicate::NotTrue("starting".into()),
            Predicate::NotTrue("mount_missing".into()),
        ],
        assert: vec![("crash_evidence".into(), FactValue::Flag(true))],
        cause: Some("service crashed (processes gone)".into()),
        actions: vec![RepairAction::RestartService("$svc".into())],
        priority: 20,
    });
    e.add_rule(Rule {
        id: "svc-listener-wedged".into(),
        when: vec![
            Predicate::TextEq("probe".into(), "refused".into()),
            Predicate::NumLt("procs_missing".into(), 1.0),
            Predicate::NotTrue("starting".into()),
            Predicate::NotTrue("mount_missing".into()),
        ],
        assert: vec![],
        cause: Some("listener wedged (processes present, port dead)".into()),
        actions: vec![RepairAction::BounceService("$svc".into())],
        priority: 15,
    });
    e.add_rule(Rule {
        id: "svc-overloaded-host".into(),
        when: vec![
            Predicate::TextEq("probe".into(), "timeout".into()),
            Predicate::NumGt("cpu_util".into(), 1.1),
        ],
        assert: vec![],
        cause: Some("host overloaded; service slow, restart would not help".into()),
        actions: vec![RepairAction::NotifyHumans("host overloaded".into())],
        priority: 18, // outranks the hang rule when overload is evident
    });
    e.add_rule(Rule {
        id: "svc-hung".into(),
        when: vec![
            Predicate::TextEq("probe".into(), "timeout".into()),
            Predicate::NumLt("procs_missing".into(), 1.0),
            Predicate::NotTrue("starting".into()),
        ],
        assert: vec![],
        cause: Some("service hung (processes present, no response)".into()),
        actions: vec![RepairAction::BounceService("$svc".into())],
        priority: 10,
    });
    e.add_rule(Rule {
        id: "svc-host-dead".into(),
        when: vec![
            Predicate::TextEq("probe".into(), "timeout".into()),
            Predicate::NumGt("procs_missing".into(), 90.0), // sentinel: no process table at all
        ],
        assert: vec![],
        cause: Some("host not responding".into()),
        actions: vec![RepairAction::NotifyHumans("host down".into())],
        priority: 25,
    });
    e.add_rule(Rule {
        id: "svc-corrupted".into(),
        when: vec![Predicate::TextEq("probe".into(), "query-error".into())],
        assert: vec![],
        cause: Some("on-disk corruption (connects, queries fail)".into()),
        actions: vec![RepairAction::RestoreService("$svc".into())],
        priority: 22,
    });
    e
}

/// Rules for the **resource intelliagent** (disks, memory, zombies).
/// Facts: `fs_usage_logs`, `zombie_count`, `leaky_proc` (text name of a
/// non-SLKT process holding outsized memory), `leaky_mem_frac`.
pub fn resource_rules() -> RuleEngine {
    let mut e = RuleEngine::new();
    e.add_rule(Rule {
        id: "res-logs-full".into(),
        when: vec![Predicate::NumGt("fs_usage_logs".into(), 0.9)],
        assert: vec![],
        cause: Some("/logs filesystem nearly full".into()),
        actions: vec![RepairAction::RotateLogs("/logs".into())],
        priority: 20,
    });
    e.add_rule(Rule {
        id: "res-memory-hog".into(),
        when: vec![
            Predicate::Exists("leaky_proc".into()),
            Predicate::NumGt("leaky_mem_frac".into(), 0.3),
        ],
        assert: vec![],
        cause: Some("unexpected process holding outsized memory (leak)".into()),
        actions: vec![RepairAction::KillProcess("$proc".into())],
        priority: 18,
    });
    e.add_rule(Rule {
        id: "res-zombie-storm".into(),
        when: vec![Predicate::NumGt("zombie_count".into(), 10.0)],
        assert: vec![],
        cause: Some("zombie accumulation (parent not reaping)".into()),
        actions: vec![RepairAction::KillProcess("zombies".into())],
        priority: 10,
    });
    e
}

/// Rules for the **OS/network intelliagent**. Facts: `run_queue`,
/// `cpu_idle_pct`, `runaway_proc` (text), `runaway_cpu_frac`,
/// `ntp_synced` (flag), `private_net_ok` (flag),
/// `firewall_blocked` (flag).
pub fn os_net_rules() -> RuleEngine {
    let mut e = RuleEngine::new();
    e.add_rule(Rule {
        id: "os-runaway".into(),
        when: vec![
            Predicate::Exists("runaway_proc".into()),
            Predicate::NumGt("runaway_cpu_frac".into(), 0.3),
        ],
        assert: vec![],
        cause: Some("runaway process saturating CPU".into()),
        actions: vec![RepairAction::KillProcess("$proc".into())],
        priority: 20,
    });
    e.add_rule(Rule {
        id: "os-ntp-broken".into(),
        when: vec![Predicate::NotTrue("ntp_synced".into())],
        assert: vec![],
        cause: Some("NTP out of sync".into()),
        actions: vec![RepairAction::FixNtp],
        priority: 8,
    });
    e.add_rule(Rule {
        id: "net-private-down".into(),
        when: vec![Predicate::NotTrue("private_net_ok".into())],
        assert: vec![],
        cause: Some("private agent network unreachable".into()),
        actions: vec![
            RepairAction::ReroutePublic,
            RepairAction::NotifyHumans("private agent LAN down".into()),
        ],
        priority: 15,
    });
    e.add_rule(Rule {
        id: "net-firewall-block".into(),
        when: vec![Predicate::IsTrue("firewall_blocked".into())],
        assert: vec![],
        cause: Some("firewall rule blocks this host".into()),
        actions: vec![RepairAction::NotifyHumans(
            "firewall misconfiguration".into(),
        )],
        priority: 17,
    });
    e
}

/// Rules for the **hardware intelliagent**. Facts: per component class,
/// `degraded_<class>` and `failed_<class>` counts.
pub fn hardware_rules() -> RuleEngine {
    let mut e = RuleEngine::new();
    for class in ["cpu", "disk", "nic"] {
        e.add_rule(Rule {
            id: format!("hw-degraded-{class}"),
            when: vec![Predicate::NumGt(format!("degraded_{class}"), 0.0)],
            assert: vec![],
            cause: Some(format!("{class} throwing correctable errors")),
            actions: vec![
                RepairAction::OfflineComponent(class.to_string()),
                RepairAction::NotifyHumans(format!("{class} offlined, replace at leisure")),
            ],
            priority: 12,
        });
    }
    for class in ["memory", "board", "psu"] {
        e.add_rule(Rule {
            id: format!("hw-degraded-{class}"),
            when: vec![Predicate::NumGt(format!("degraded_{class}"), 0.0)],
            assert: vec![],
            cause: Some(format!(
                "{class} throwing correctable errors (not offlinable)"
            )),
            actions: vec![RepairAction::NotifyHumans(format!(
                "{class} degrading, schedule replacement"
            ))],
            priority: 14,
        });
    }
    for class in ["cpu", "memory", "board", "disk", "nic", "psu"] {
        e.add_rule(Rule {
            id: format!("hw-failed-{class}"),
            when: vec![Predicate::NumGt(format!("failed_{class}"), 0.0)],
            assert: vec![],
            cause: Some(format!("{class} failed")),
            actions: vec![RepairAction::NotifyHumans(format!(
                "{class} failure, engineer needed"
            ))],
            priority: 16,
        });
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_ontology::rules::FactBase;

    fn facts(pairs: &[(&str, FactValue)]) -> FactBase {
        let mut f = FactBase::new();
        for (k, v) in pairs {
            f.assert_fact(*k, v.clone());
        }
        f
    }

    #[test]
    fn crashed_service_prescribes_restart() {
        let e = service_rules();
        let mut f = facts(&[
            ("probe", FactValue::Text("refused".into())),
            ("procs_missing", FactValue::Num(3.0)),
        ]);
        let d = e.diagnose(&mut f).unwrap();
        assert_eq!(d.rule_id, "svc-crashed");
        assert!(matches!(d.actions[0], RepairAction::RestartService(_)));
    }

    #[test]
    fn starting_service_is_left_alone() {
        let e = service_rules();
        let mut f = facts(&[
            ("probe", FactValue::Text("refused".into())),
            ("procs_missing", FactValue::Num(0.0)),
            ("starting", FactValue::Flag(true)),
        ]);
        assert!(e.diagnose(&mut f).is_none());
    }

    #[test]
    fn hang_vs_overload_discrimination() {
        let e = service_rules();
        // Plain hang: bounce.
        let mut f = facts(&[
            ("probe", FactValue::Text("timeout".into())),
            ("procs_missing", FactValue::Num(0.0)),
            ("cpu_util", FactValue::Num(0.4)),
        ]);
        assert_eq!(e.diagnose(&mut f).unwrap().rule_id, "svc-hung");
        // Overloaded host: do NOT bounce.
        let mut f = facts(&[
            ("probe", FactValue::Text("timeout".into())),
            ("procs_missing", FactValue::Num(0.0)),
            ("cpu_util", FactValue::Num(1.6)),
        ]);
        let d = e.diagnose(&mut f).unwrap();
        assert_eq!(d.rule_id, "svc-overloaded-host");
        assert!(matches!(d.actions[0], RepairAction::NotifyHumans(_)));
    }

    #[test]
    fn corruption_prescribes_restore() {
        let e = service_rules();
        let mut f = facts(&[("probe", FactValue::Text("query-error".into()))]);
        let d = e.diagnose(&mut f).unwrap();
        assert_eq!(d.rule_id, "svc-corrupted");
        assert!(matches!(d.actions[0], RepairAction::RestoreService(_)));
    }

    #[test]
    fn mount_missing_outranks_crash() {
        let e = service_rules();
        let mut f = facts(&[
            ("probe", FactValue::Text("refused".into())),
            ("procs_missing", FactValue::Num(3.0)),
            ("mount_missing", FactValue::Flag(true)),
        ]);
        let d = e.diagnose(&mut f).unwrap();
        assert_eq!(d.rule_id, "svc-mount-missing");
        assert!(matches!(d.actions[0], RepairAction::Remount(_)));
    }

    #[test]
    fn resource_rules_fire() {
        let e = resource_rules();
        let mut f = facts(&[("fs_usage_logs", FactValue::Num(0.96))]);
        assert_eq!(e.diagnose(&mut f).unwrap().rule_id, "res-logs-full");
        let mut f = facts(&[
            ("leaky_proc", FactValue::Text("leaky".into())),
            ("leaky_mem_frac", FactValue::Num(0.8)),
        ]);
        assert_eq!(e.diagnose(&mut f).unwrap().rule_id, "res-memory-hog");
        let mut f = facts(&[("zombie_count", FactValue::Num(50.0))]);
        assert_eq!(e.diagnose(&mut f).unwrap().rule_id, "res-zombie-storm");
    }

    #[test]
    fn os_net_rules_fire() {
        let e = os_net_rules();
        let mut f = facts(&[
            ("runaway_proc", FactValue::Text("runaway".into())),
            ("runaway_cpu_frac", FactValue::Num(0.9)),
            ("ntp_synced", FactValue::Flag(true)),
            ("private_net_ok", FactValue::Flag(true)),
        ]);
        assert_eq!(e.diagnose(&mut f).unwrap().rule_id, "os-runaway");
        let mut f = facts(&[
            ("ntp_synced", FactValue::Flag(false)),
            ("private_net_ok", FactValue::Flag(true)),
        ]);
        assert_eq!(e.diagnose(&mut f).unwrap().rule_id, "os-ntp-broken");
        let mut f = facts(&[
            ("ntp_synced", FactValue::Flag(true)),
            ("private_net_ok", FactValue::Flag(false)),
        ]);
        let d = e.diagnose(&mut f).unwrap();
        assert_eq!(d.rule_id, "net-private-down");
        assert_eq!(d.actions[0], RepairAction::ReroutePublic);
    }

    #[test]
    fn hardware_rules_distinguish_offlinable() {
        let e = hardware_rules();
        let mut f = facts(&[("degraded_cpu", FactValue::Num(1.0))]);
        let d = e.diagnose(&mut f).unwrap();
        assert!(matches!(d.actions[0], RepairAction::OfflineComponent(_)));
        let mut f = facts(&[("degraded_board", FactValue::Num(1.0))]);
        let d = e.diagnose(&mut f).unwrap();
        assert!(matches!(d.actions[0], RepairAction::NotifyHumans(_)));
        let mut f = facts(&[("failed_psu", FactValue::Num(1.0))]);
        let d = e.diagnose(&mut f).unwrap();
        assert!(matches!(d.actions[0], RepairAction::NotifyHumans(_)));
    }

    #[test]
    fn healthy_facts_fire_nothing() {
        for engine in [
            service_rules(),
            resource_rules(),
            os_net_rules(),
            hardware_rules(),
        ] {
            let mut f = facts(&[
                ("probe", FactValue::Text("ok".into())),
                ("procs_missing", FactValue::Num(0.0)),
                ("cpu_util", FactValue::Num(0.3)),
                ("fs_usage_logs", FactValue::Num(0.2)),
                ("zombie_count", FactValue::Num(0.0)),
                ("ntp_synced", FactValue::Flag(true)),
                ("private_net_ok", FactValue::Flag(true)),
            ]);
            assert!(engine.diagnose(&mut f).is_none());
        }
    }
}
