//! Paired-run divergence finder.
//!
//! The paper's before/after methodology (§4, Figure 2) compares a
//! ManualOps run against an Intelliagents run **of the same scenario**:
//! same seed, same fault tape, same analyst workload. That comparison is
//! only meaningful while the exogenous streams really are identical — if
//! a refactor accidentally lets the management mode perturb the fault or
//! workload tape, every downstream number silently stops being a paired
//! measurement.
//!
//! [`first_divergence`] checks the invariant directly: given two built
//! (or run) worlds it walks the fault tape and then the workload tape
//! element-by-element and reports the **first** differing event, rendered
//! on both sides, so a regression pinpoints the exact tape index rather
//! than surfacing as a mysteriously different Figure-2 table.
//!
//! [`first_trace_divergence`] goes one layer deeper: identical *tapes*
//! only prove the inputs matched — a handler regression can still make
//! two runs process those inputs differently mid-run. It compares the
//! **trace streams** of the fault and workload subsystems (what the
//! handlers actually did, in order) and reports the first differing
//! event together with a window of the shared history leading up to it.

use std::fmt;

use crate::world::World;
use intelliqos_simkern::Subsystem;

/// Which exogenous stream diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// The fault-injection tape.
    FaultTape,
    /// The analyst workload tape.
    WorkloadTape,
}

impl Stream {
    /// Human-readable stream name.
    pub fn name(self) -> &'static str {
        match self {
            Stream::FaultTape => "fault-tape",
            Stream::WorkloadTape => "workload-tape",
        }
    }
}

/// The first point at which two runs' exogenous streams differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Stream containing the first difference.
    pub stream: Stream,
    /// Index of the first differing event within that stream.
    pub index: usize,
    /// Rendered event on the left run (`"<absent>"` past its tape end).
    pub left: String,
    /// Rendered event on the right run (`"<absent>"` past its tape end).
    pub right: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: left={} right={}",
            self.stream.name(),
            self.index,
            self.left,
            self.right
        )
    }
}

fn first_diff<T: PartialEq + fmt::Debug>(
    stream: Stream,
    left: &[T],
    right: &[T],
) -> Option<Divergence> {
    let render = |side: &[T], i: usize| {
        side.get(i)
            .map(|e| format!("{e:?}"))
            .unwrap_or_else(|| "<absent>".to_string())
    };
    let n = left.len().max(right.len());
    for i in 0..n {
        if left.get(i) != right.get(i) {
            return Some(Divergence {
                stream,
                index: i,
                left: render(left, i),
                right: render(right, i),
            });
        }
    }
    None
}

/// Find the first diverging event between two runs' exogenous streams.
///
/// Checks the fault tape first (it drives everything downstream), then
/// the workload tape. Returns `None` when both streams are identical —
/// the paired-run invariant holds.
pub fn first_divergence(left: &World, right: &World) -> Option<Divergence> {
    first_diff(Stream::FaultTape, left.fault_tape(), right.fault_tape()).or_else(|| {
        first_diff(
            Stream::WorkloadTape,
            left.workload_tape(),
            right.workload_tape(),
        )
    })
}

/// How many shared-prefix events a [`TraceDivergence`] keeps as context.
pub const TRACE_WINDOW: usize = 8;

/// The first mid-run handler divergence between two traced runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Index of the first differing event within the filtered
    /// (fault + workload) handler stream.
    pub index: usize,
    /// Rendered event on the left run (`"<absent>"` past stream end).
    pub left: String,
    /// Rendered event on the right run (`"<absent>"` past stream end).
    pub right: String,
    /// Up to [`TRACE_WINDOW`] shared events immediately before the
    /// split, oldest first — the context a triager reads to see what
    /// both runs last agreed on.
    pub window: Vec<String>,
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace[fault+work][{}]: left={} right={}",
            self.index, self.left, self.right
        )?;
        for w in &self.window {
            writeln!(f, "  shared: {w}")?;
        }
        Ok(())
    }
}

/// The fault + workload handler stream of a traced run, rendered
/// without the global sequence number (that counter spans *all*
/// subsystems, so it legitimately differs between runs whose agent or
/// admin activity differs).
fn handler_stream(world: &World) -> Vec<String> {
    world
        .trace
        .events()
        .into_iter()
        .filter(|e| matches!(e.subsystem, Subsystem::Fault | Subsystem::Workload))
        .map(|e| {
            let rendered = e.render();
            rendered
                .split_once('|')
                .map(|(_seq, rest)| rest.to_string())
                .unwrap_or(rendered)
        })
        .collect()
}

/// Find the first mid-run divergence between two traced runs' fault and
/// workload handler streams, with a window of shared context.
///
/// Returns `None` when the streams are identical — which for two runs
/// of the **same configuration** is the replay-determinism invariant,
/// and for a cross-mode pair additionally certifies that no endogenous
/// event (e.g. a load-dependent database crash) fired differently.
/// Untraced runs have empty streams and compare equal.
///
/// The comparison covers the *retained* trace windows; size the trace
/// capacity to the run (the default keeps 65k events) or check
/// `trace.evicted()` first when absolute coverage matters.
pub fn first_trace_divergence(left: &World, right: &World) -> Option<TraceDivergence> {
    let l = handler_stream(left);
    let r = handler_stream(right);
    let n = l.len().max(r.len());
    for i in 0..n {
        if l.get(i) != r.get(i) {
            let absent = || "<absent>".to_string();
            return Some(TraceDivergence {
                index: i,
                left: l.get(i).cloned().unwrap_or_else(absent),
                right: r.get(i).cloned().unwrap_or_else(absent),
                window: l[i.saturating_sub(TRACE_WINDOW)..i].to_vec(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ManagementMode, ScenarioConfig};

    fn build(seed: u64, mode: ManagementMode) -> World {
        let mut cfg = ScenarioConfig::small(seed, mode);
        cfg.horizon = intelliqos_simkern::SimDuration::from_days(3);
        World::build(cfg)
    }

    #[test]
    fn same_seed_across_modes_has_no_divergence() {
        let a = build(42, ManagementMode::ManualOps);
        let b = build(42, ManagementMode::Intelliagents);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn different_seeds_pinpoint_first_differing_event() {
        let a = build(42, ManagementMode::ManualOps);
        let b = build(43, ManagementMode::ManualOps);
        let d = first_divergence(&a, &b).expect("different seeds must diverge");
        // The report names the stream, the index, and both renderings.
        assert!(d.left != d.right);
        let shown = d.to_string();
        assert!(shown.contains(&format!("[{}]", d.index)));
        assert!(shown.contains("left="));
        // And it really is the FIRST difference in that stream.
        match d.stream {
            Stream::FaultTape => {
                assert_eq!(a.fault_tape()[..d.index], b.fault_tape()[..d.index]);
            }
            Stream::WorkloadTape => {
                assert_eq!(a.fault_tape(), b.fault_tape());
                assert_eq!(a.workload_tape()[..d.index], b.workload_tape()[..d.index]);
            }
        }
    }

    #[test]
    fn same_seed_same_mode_is_trivially_identical() {
        let a = build(7, ManagementMode::ManualOps);
        let b = build(7, ManagementMode::ManualOps);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn length_mismatch_renders_absent_side() {
        let left = [1, 2, 3];
        let d =
            first_diff(Stream::FaultTape, &left, &left[..1]).expect("truncated stream diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left, "2");
        assert_eq!(d.right, "<absent>");
    }

    fn run_traced(seed: u64, mode: ManagementMode) -> World {
        let mut world = build(seed, mode).enable_trace();
        world.run_to_end();
        world
    }

    #[test]
    fn replay_of_same_config_has_no_trace_divergence() {
        let a = run_traced(42, ManagementMode::Intelliagents);
        let b = run_traced(42, ManagementMode::Intelliagents);
        assert!(!handler_stream(&a).is_empty());
        assert_eq!(first_trace_divergence(&a, &b), None);
    }

    #[test]
    fn untraced_runs_compare_equal() {
        let mut a = build(42, ManagementMode::ManualOps);
        let mut b = build(43, ManagementMode::ManualOps);
        a.run_to_end();
        b.run_to_end();
        assert_eq!(first_trace_divergence(&a, &b), None);
    }

    #[test]
    fn different_seeds_pinpoint_first_handler_divergence() {
        let a = run_traced(42, ManagementMode::ManualOps);
        let b = run_traced(43, ManagementMode::ManualOps);
        let d = first_trace_divergence(&a, &b).expect("different seeds diverge");
        assert_ne!(d.left, d.right);
        assert!(d.window.len() <= TRACE_WINDOW);
        // The window really is shared history: both streams agree on it.
        let (l, r) = (handler_stream(&a), handler_stream(&b));
        assert_eq!(l[..d.index], r[..d.index]);
        let start = d.index.saturating_sub(TRACE_WINDOW);
        assert_eq!(d.window[..], l[start..d.index]);
        // Rendered without the global sequence column: the first field
        // is the timestamp, not a counter.
        let shown = d.to_string();
        assert!(shown.contains("trace[fault+work]"));
    }

    #[test]
    fn stream_truncation_renders_absent_side_in_traces() {
        let a = run_traced(42, ManagementMode::ManualOps);
        let mut b = build(42, ManagementMode::ManualOps);
        // Stop the replay early: its handler stream is a strict prefix.
        b = b.enable_trace();
        b.run_until(intelliqos_simkern::SimTime::from_secs(1));
        if let Some(d) = first_trace_divergence(&a, &b) {
            assert_eq!(d.right, "<absent>");
            assert_ne!(d.left, "<absent>");
        }
    }
}
