//! Paired-run divergence finder.
//!
//! The paper's before/after methodology (§4, Figure 2) compares a
//! ManualOps run against an Intelliagents run **of the same scenario**:
//! same seed, same fault tape, same analyst workload. That comparison is
//! only meaningful while the exogenous streams really are identical — if
//! a refactor accidentally lets the management mode perturb the fault or
//! workload tape, every downstream number silently stops being a paired
//! measurement.
//!
//! [`first_divergence`] checks the invariant directly: given two built
//! (or run) worlds it walks the fault tape and then the workload tape
//! element-by-element and reports the **first** differing event, rendered
//! on both sides, so a regression pinpoints the exact tape index rather
//! than surfacing as a mysteriously different Figure-2 table.

use std::fmt;

use crate::world::World;

/// Which exogenous stream diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// The fault-injection tape.
    FaultTape,
    /// The analyst workload tape.
    WorkloadTape,
}

impl Stream {
    /// Human-readable stream name.
    pub fn name(self) -> &'static str {
        match self {
            Stream::FaultTape => "fault-tape",
            Stream::WorkloadTape => "workload-tape",
        }
    }
}

/// The first point at which two runs' exogenous streams differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Stream containing the first difference.
    pub stream: Stream,
    /// Index of the first differing event within that stream.
    pub index: usize,
    /// Rendered event on the left run (`"<absent>"` past its tape end).
    pub left: String,
    /// Rendered event on the right run (`"<absent>"` past its tape end).
    pub right: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: left={} right={}",
            self.stream.name(),
            self.index,
            self.left,
            self.right
        )
    }
}

fn first_diff<T: PartialEq + fmt::Debug>(
    stream: Stream,
    left: &[T],
    right: &[T],
) -> Option<Divergence> {
    let render = |side: &[T], i: usize| {
        side.get(i)
            .map(|e| format!("{e:?}"))
            .unwrap_or_else(|| "<absent>".to_string())
    };
    let n = left.len().max(right.len());
    for i in 0..n {
        if left.get(i) != right.get(i) {
            return Some(Divergence {
                stream,
                index: i,
                left: render(left, i),
                right: render(right, i),
            });
        }
    }
    None
}

/// Find the first diverging event between two runs' exogenous streams.
///
/// Checks the fault tape first (it drives everything downstream), then
/// the workload tape. Returns `None` when both streams are identical —
/// the paired-run invariant holds.
pub fn first_divergence(left: &World, right: &World) -> Option<Divergence> {
    first_diff(Stream::FaultTape, left.fault_tape(), right.fault_tape()).or_else(|| {
        first_diff(
            Stream::WorkloadTape,
            left.workload_tape(),
            right.workload_tape(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ManagementMode, ScenarioConfig};

    fn build(seed: u64, mode: ManagementMode) -> World {
        let mut cfg = ScenarioConfig::small(seed, mode);
        cfg.horizon = intelliqos_simkern::SimDuration::from_days(3);
        World::build(cfg)
    }

    #[test]
    fn same_seed_across_modes_has_no_divergence() {
        let a = build(42, ManagementMode::ManualOps);
        let b = build(42, ManagementMode::Intelliagents);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn different_seeds_pinpoint_first_differing_event() {
        let a = build(42, ManagementMode::ManualOps);
        let b = build(43, ManagementMode::ManualOps);
        let d = first_divergence(&a, &b).expect("different seeds must diverge");
        // The report names the stream, the index, and both renderings.
        assert!(d.left != d.right);
        let shown = d.to_string();
        assert!(shown.contains(&format!("[{}]", d.index)));
        assert!(shown.contains("left="));
        // And it really is the FIRST difference in that stream.
        match d.stream {
            Stream::FaultTape => {
                assert_eq!(a.fault_tape()[..d.index], b.fault_tape()[..d.index]);
            }
            Stream::WorkloadTape => {
                assert_eq!(a.fault_tape(), b.fault_tape());
                assert_eq!(a.workload_tape()[..d.index], b.workload_tape()[..d.index]);
            }
        }
    }

    #[test]
    fn same_seed_same_mode_is_trivially_identical() {
        let a = build(7, ManagementMode::ManualOps);
        let b = build(7, ManagementMode::ManualOps);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn length_mismatch_renders_absent_side() {
        let left = [1, 2, 3];
        let d =
            first_diff(Stream::FaultTape, &left, &left[..1]).expect("truncated stream diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left, "2");
        assert_eq!(d.right, "<absent>");
    }
}
