//! DGSPL-guided job (re)scheduling.
//!
//! §4: "If jobs failed, intelliagents residing on the administration
//! servers resubmitted them not based on the manual LSF settings and
//! rules for job submissions, but based on the dynamically generated
//! DGSPs … their selection process would 'prefer' first a server of the
//! same model with more CPUs and memory." This module implements that
//! policy as an [`ServerSelector`] so it plugs into the same dispatch
//! path as the manual and random baselines.

use std::collections::BTreeMap;

use intelliqos_cluster::ids::ServerId;

use intelliqos_lsf::job::Job;
use intelliqos_lsf::select::{ServerCandidate, ServerSelector};

use intelliqos_ontology::dgspl::Dgspl;

/// Selector driven by the latest DGSPL shortlist.
///
/// The DGSPL is regenerated every ~15 minutes, so its load picture can
/// be stale — that is the realistic imperfection the paper accepts. The
/// candidate snapshot still vetoes servers that are down, databaseless,
/// or at their job limit *right now* (the LSF layer knows that much), so
/// staleness costs placement quality, not correctness.
pub struct DgsplSelector {
    /// Latest global profile list.
    dgspl: Dgspl,
    /// Hostname → server id mapping (DGSPLs speak hostnames).
    host_ids: BTreeMap<String, ServerId>,
    /// Application-type prefix jobs run against (`db-` covers both
    /// database engines).
    app_type: String,
    /// Optional hardware floor from the SLKT of a failed server:
    /// `(model, power, ram_gb)`. When set, only equal-or-higher-power
    /// candidates are considered, same model preferred.
    replacement_floor: Option<(String, f64, u32)>,
}

impl DgsplSelector {
    /// New selector over a DGSPL snapshot.
    pub fn new(
        dgspl: Dgspl,
        host_ids: BTreeMap<String, ServerId>,
        app_type: impl Into<String>,
    ) -> Self {
        DgsplSelector {
            dgspl,
            host_ids,
            app_type: app_type.into(),
            replacement_floor: None,
        }
    }

    /// Replace the DGSPL snapshot (called after each regeneration).
    pub fn update(&mut self, dgspl: Dgspl) {
        self.dgspl = dgspl;
    }

    /// The DGSPL snapshot currently driving selection.
    pub fn current(&self) -> &Dgspl {
        &self.dgspl
    }

    /// Set the SLKT power floor for resubmitting work off a failed
    /// server.
    pub fn set_replacement_floor(&mut self, model: impl Into<String>, power: f64, ram_gb: u32) {
        self.replacement_floor = Some((model.into(), power, ram_gb));
    }

    /// Clear the power floor (ordinary submissions).
    pub fn clear_replacement_floor(&mut self) {
        self.replacement_floor = None;
    }

    /// Age of the DGSPL snapshot in seconds at `now_secs`.
    pub fn staleness_secs(&self, now_secs: u64) -> u64 {
        now_secs.saturating_sub(self.dgspl.generated_at_secs)
    }
}

impl ServerSelector for DgsplSelector {
    fn select(&mut self, job: &Job, candidates: &[ServerCandidate]) -> Option<ServerId> {
        let pred = |e: &intelliqos_ontology::dgspl::DgsplEntry| {
            e.app_type.starts_with(self.app_type.as_str())
        };
        let shortlist = match &self.replacement_floor {
            Some((model, power, ram)) => self
                .dgspl
                .replacement_shortlist_by(pred, model, *power, *ram),
            None => self.dgspl.shortlist_by(pred),
        };
        // Walk the shortlist best-first; take the first entry whose
        // server currently accepts jobs.
        for entry in shortlist {
            let Some(&sid) = self.host_ids.get(&entry.hostname) else {
                continue;
            };
            // On resubmission, avoid the servers this job already
            // crashed on — knowledge the manual/random baselines lack.
            if job.attempts > 0 && job.tried_servers.contains(&sid) {
                continue;
            }
            if let Some(c) = candidates.iter().find(|c| c.server == sid) {
                if c.accepts_jobs() {
                    return Some(sid);
                }
            }
        }
        // DGSPL exhausted (or a hard floor excluded everything): the
        // paper's agents email a human in that case; dispatch-wise the
        // job stays queued.
        None
    }

    fn name(&self) -> &'static str {
        "dgspl-shortlist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::ServerModel;
    use intelliqos_lsf::job::{JobId, JobKind, JobSpec};
    use intelliqos_ontology::dgspl::DgsplEntry;
    use intelliqos_simkern::SimTime;

    fn entry(host: &str, model: &str, power: f64, ram: u32, load: f64) -> DgsplEntry {
        DgsplEntry {
            hostname: host.into(),
            server_type: model.into(),
            os: "Solaris".into(),
            ram_gb: ram,
            cpus: 8,
            compute_power: power,
            app_type: "db-oracle".into(),
            version: "8.1.7".into(),
            load,
            users: 0,
            location: "London".into(),
            site: "LDN".into(),
            service: format!("db-{host}"),
        }
    }

    fn candidate(id: u32, running: u32) -> ServerCandidate {
        ServerCandidate {
            server: ServerId(id),
            spec: ServerModel::SunE4500.default_spec(),
            running_jobs: running,
            job_limit: 4,
            cpu_utilization: 0.5,
            db_serving: true,
            up: true,
        }
    }

    fn selector(entries: Vec<DgsplEntry>) -> DgsplSelector {
        let host_ids: BTreeMap<String, ServerId> = vec![
            ("a".to_string(), ServerId(0)),
            ("b".to_string(), ServerId(1)),
            ("c".to_string(), ServerId(2)),
        ]
        .into_iter()
        .collect();
        DgsplSelector::new(
            Dgspl {
                generated_at_secs: 0,
                entries,
            },
            host_ids,
            "db-oracle",
        )
    }

    fn job() -> Job {
        Job::new(
            JobId(0),
            JobSpec::defaults_for(JobKind::DataMining, "analyst01"),
            SimTime::ZERO,
        )
    }

    #[test]
    fn picks_best_shortlist_entry() {
        let mut sel = selector(vec![
            entry("a", "Sun-E4500", 7.2, 8, 0.9),
            entry("b", "Sun-E4500", 7.2, 8, 0.1), // least loaded → best
            entry("c", "Sun-E4500", 7.2, 8, 0.5),
        ]);
        let cands = vec![candidate(0, 0), candidate(1, 0), candidate(2, 0)];
        assert_eq!(sel.select(&job(), &cands), Some(ServerId(1)));
    }

    #[test]
    fn skips_best_entry_when_it_no_longer_accepts() {
        let mut sel = selector(vec![
            entry("a", "Sun-E4500", 7.2, 8, 0.9),
            entry("b", "Sun-E4500", 7.2, 8, 0.1),
        ]);
        // b is at its job limit right now despite the rosy DGSPL view.
        let cands = vec![candidate(0, 0), candidate(1, 4)];
        assert_eq!(sel.select(&job(), &cands), Some(ServerId(0)));
    }

    #[test]
    fn replacement_floor_prefers_same_model_with_more_power() {
        let mut sel = selector(vec![
            entry("a", "Sun-E10000", 32.0, 32, 0.05), // other model, huge, idle
            entry("b", "Sun-E4500", 10.8, 16, 0.5),   // same model, bigger
            entry("c", "Sun-E4500", 3.6, 4, 0.3),     // same model, too small
        ]);
        sel.set_replacement_floor("Sun-E4500", 7.2, 8);
        let cands = vec![candidate(0, 0), candidate(1, 0), candidate(2, 0)];
        // Same-model-with-more-resources wins over the idler E10K.
        assert_eq!(sel.select(&job(), &cands), Some(ServerId(1)));
        sel.clear_replacement_floor();
        // Without the floor, plain best-first (load) applies: the E10K.
        assert_eq!(sel.select(&job(), &cands), Some(ServerId(0)));
    }

    #[test]
    fn unknown_hosts_in_dgspl_are_skipped() {
        let mut sel = selector(vec![entry("ghost-host", "Sun-E4500", 7.2, 8, 0.0)]);
        let cands = vec![candidate(0, 0)];
        assert_eq!(sel.select(&job(), &cands), None);
    }

    #[test]
    fn exhausted_shortlist_returns_none() {
        let mut sel = selector(vec![entry("a", "Sun-E4500", 7.2, 8, 0.2)]);
        let mut cand = candidate(0, 0);
        cand.db_serving = false;
        assert_eq!(sel.select(&job(), &[cand]), None);
    }

    #[test]
    fn staleness_and_update() {
        let mut sel = selector(vec![]);
        assert_eq!(sel.staleness_secs(900), 900);
        sel.update(Dgspl {
            generated_at_secs: 800,
            entries: vec![],
        });
        assert_eq!(sel.staleness_secs(900), 100);
        assert_eq!(sel.name(), "dgspl-shortlist");
    }
}
