//! The downtime ledger: incidents, categories, and the Figure 2
//! accounting.
//!
//! Every fault — exogenous or endogenous — opens an **incident** in the
//! category Figure 2 charts it under. The incident records when it was
//! detected and when service was restored; total downtime per category
//! is the sum of incident durations, exactly the "breakdown in hours
//! based on the type of errors that caused downtime" the customer
//! reported.

use std::collections::BTreeMap;

use intelliqos_cluster::faults::FaultCategory;
use intelliqos_simkern::{SimDuration, SimTime};

/// Incident identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IncidentId(pub u64);

impl std::fmt::Display for IncidentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inc{:05}", self.0)
    }
}

/// One tracked incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Identity.
    pub id: IncidentId,
    /// Figure 2 category.
    pub category: FaultCategory,
    /// Free-form description (mechanism, target).
    pub description: String,
    /// Fault onset.
    pub onset: SimTime,
    /// When monitoring/humans first knew.
    pub detected: Option<SimTime>,
    /// When service was restored.
    pub restored: Option<SimTime>,
    /// Whether repair was automatic (agent) or manual (human).
    pub auto_repaired: bool,
}

impl Incident {
    /// Detection latency, if detected.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        self.detected.map(|d| d.since(self.onset))
    }

    /// Repair time (detected → restored), if both known.
    pub fn repair_time(&self) -> Option<SimDuration> {
        match (self.detected, self.restored) {
            (Some(d), Some(r)) => Some(r.since(d)),
            _ => None,
        }
    }

    /// Total downtime (onset → restored), if closed.
    pub fn downtime(&self) -> Option<SimDuration> {
        self.restored.map(|r| r.since(self.onset))
    }
}

/// Aggregate statistics for one category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategoryTotals {
    /// Closed incidents.
    pub incidents: u64,
    /// Total downtime hours.
    pub downtime_hours: f64,
    /// Total detection-latency hours.
    pub detection_hours: f64,
    /// Total repair hours.
    pub repair_hours: f64,
    /// How many were auto-repaired.
    pub auto_repaired: u64,
}

impl CategoryTotals {
    /// Mean downtime per incident (0 when none).
    pub fn mean_downtime_hours(&self) -> f64 {
        if self.incidents == 0 {
            0.0
        } else {
            self.downtime_hours / self.incidents as f64
        }
    }

    /// Mean detection latency per incident (0 when none).
    pub fn mean_detection_hours(&self) -> f64 {
        if self.incidents == 0 {
            0.0
        } else {
            self.detection_hours / self.incidents as f64
        }
    }
}

/// The ledger.
#[derive(Debug, Clone, Default)]
pub struct DowntimeLedger {
    incidents: BTreeMap<IncidentId, Incident>,
    next: u64,
}

impl DowntimeLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        DowntimeLedger::default()
    }

    /// Open a new incident at fault onset.
    pub fn open(
        &mut self,
        category: FaultCategory,
        description: impl Into<String>,
        onset: SimTime,
    ) -> IncidentId {
        let id = IncidentId(self.next);
        self.next += 1;
        self.incidents.insert(
            id,
            Incident {
                id,
                category,
                description: description.into(),
                onset,
                detected: None,
                restored: None,
                auto_repaired: false,
            },
        );
        id
    }

    /// Record detection (first knowledge). Idempotent — the earliest
    /// detection wins.
    pub fn detect(&mut self, id: IncidentId, at: SimTime) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            if inc.detected.is_none() {
                inc.detected = Some(at);
            }
            true
        } else {
            false
        }
    }

    /// Close the incident at restoration. Detection defaults to the
    /// restore instant if it was never recorded.
    pub fn restore(&mut self, id: IncidentId, at: SimTime, auto: bool) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            if inc.restored.is_none() {
                inc.restored = Some(at);
                if inc.detected.is_none() {
                    inc.detected = Some(at);
                }
                inc.auto_repaired = auto;
            }
            true
        } else {
            false
        }
    }

    /// Incident accessor.
    pub fn get(&self, id: IncidentId) -> Option<&Incident> {
        self.incidents.get(&id)
    }

    /// All incidents (id order).
    pub fn incidents(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.values()
    }

    /// Incidents still open.
    pub fn open_incidents(&self) -> Vec<&Incident> {
        self.incidents.values().filter(|i| i.restored.is_none()).collect()
    }

    /// Per-category totals over closed incidents.
    pub fn totals(&self) -> BTreeMap<FaultCategory, CategoryTotals> {
        let mut out: BTreeMap<FaultCategory, CategoryTotals> = BTreeMap::new();
        for inc in self.incidents.values() {
            let Some(downtime) = inc.downtime() else { continue };
            let t = out.entry(inc.category).or_default();
            t.incidents += 1;
            t.downtime_hours += downtime.as_hours_f64();
            if let Some(d) = inc.detection_latency() {
                t.detection_hours += d.as_hours_f64();
            }
            if let Some(r) = inc.repair_time() {
                t.repair_hours += r.as_hours_f64();
            }
            if inc.auto_repaired {
                t.auto_repaired += 1;
            }
        }
        out
    }

    /// Total downtime hours over all closed incidents.
    pub fn total_downtime_hours(&self) -> f64 {
        self.totals().values().map(|t| t.downtime_hours).sum()
    }

    /// Render the Figure 2 style breakdown, category order of the
    /// figure legend.
    pub fn figure2_rows(&self) -> Vec<(FaultCategory, f64)> {
        let totals = self.totals();
        FaultCategory::ALL
            .iter()
            .map(|c| {
                (
                    *c,
                    totals.get(c).map(|t| t.downtime_hours).unwrap_or(0.0),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_simkern::SimDuration;

    #[test]
    fn incident_lifecycle() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::HumanError, "killed oracle", SimTime::from_hours(1));
        assert_eq!(l.open_incidents().len(), 1);
        assert!(l.detect(id, SimTime::from_hours(2)));
        assert!(l.restore(id, SimTime::from_hours(4), false));
        let inc = l.get(id).unwrap();
        assert_eq!(inc.detection_latency(), Some(SimDuration::from_hours(1)));
        assert_eq!(inc.repair_time(), Some(SimDuration::from_hours(2)));
        assert_eq!(inc.downtime(), Some(SimDuration::from_hours(3)));
        assert!(l.open_incidents().is_empty());
    }

    #[test]
    fn earliest_detection_wins() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::LsfError, "x", SimTime::ZERO);
        l.detect(id, SimTime::from_mins(5));
        l.detect(id, SimTime::from_mins(50));
        assert_eq!(l.get(id).unwrap().detected, Some(SimTime::from_mins(5)));
    }

    #[test]
    fn restore_defaults_detection() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::Hardware, "x", SimTime::ZERO);
        l.restore(id, SimTime::from_hours(2), true);
        {
            let inc = l.get(id).unwrap();
            assert_eq!(inc.detected, Some(SimTime::from_hours(2)));
            assert!(inc.auto_repaired);
        }
        // Second restore is a no-op.
        l.restore(id, SimTime::from_hours(9), false);
        assert_eq!(l.get(id).unwrap().restored, Some(SimTime::from_hours(2)));
    }

    #[test]
    fn totals_aggregate_per_category() {
        let mut l = DowntimeLedger::new();
        for i in 0..3u64 {
            let id = l.open(FaultCategory::MidJobDbCrash, "crash", SimTime::from_hours(i * 10));
            l.detect(id, SimTime::from_hours(i * 10 + 1));
            l.restore(id, SimTime::from_hours(i * 10 + 3), i % 2 == 0);
        }
        let open = l.open(FaultCategory::MidJobDbCrash, "still down", SimTime::from_hours(99));
        let _ = open; // open incidents don't count
        let t = l.totals()[&FaultCategory::MidJobDbCrash];
        assert_eq!(t.incidents, 3);
        assert!((t.downtime_hours - 9.0).abs() < 1e-9);
        assert!((t.detection_hours - 3.0).abs() < 1e-9);
        assert!((t.repair_hours - 6.0).abs() < 1e-9);
        assert_eq!(t.auto_repaired, 2);
        assert!((t.mean_downtime_hours() - 3.0).abs() < 1e-9);
        assert!((l.total_downtime_hours() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn figure2_rows_cover_all_categories() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::FrontEndError, "hang", SimTime::ZERO);
        l.restore(id, SimTime::from_hours(2), true);
        let rows = l.figure2_rows();
        assert_eq!(rows.len(), 8);
        let fe = rows
            .iter()
            .find(|(c, _)| *c == FaultCategory::FrontEndError)
            .unwrap();
        assert!((fe.1 - 2.0).abs() < 1e-9);
        // Untouched categories report zero.
        let hw = rows.iter().find(|(c, _)| *c == FaultCategory::Hardware).unwrap();
        assert_eq!(hw.1, 0.0);
    }

    #[test]
    fn bad_ids_are_rejected() {
        let mut l = DowntimeLedger::new();
        assert!(!l.detect(IncidentId(42), SimTime::ZERO));
        assert!(!l.restore(IncidentId(42), SimTime::ZERO, false));
    }
}
