//! The downtime ledger: incidents, categories, and the Figure 2
//! accounting.
//!
//! Every fault — exogenous or endogenous — opens an **incident** in the
//! category Figure 2 charts it under, and the incident carries the full
//! lifecycle: `injected → detected → diagnosed → repaired/escalated`,
//! each with its timestamp, plus the **repair attempt history** — every
//! try in order (typically an agent try first, then the human
//! escalation), with the resolving attempt flagged.
//! Total downtime per category is the sum of incident durations, exactly
//! the "breakdown in hours based on the type of errors that caused
//! downtime" the customer reported — and the run report's category
//! tables are *derived* from this ledger, so the two can never disagree.

use std::collections::BTreeMap;

use intelliqos_cluster::faults::FaultCategory;
use intelliqos_simkern::lifecycle::{self, LifecycleState};
use intelliqos_simkern::{SimDuration, SimTime};

/// Incident identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IncidentId(pub u64);

impl std::fmt::Display for IncidentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inc{:05}", self.0)
    }
}

/// Who executed the repair that closed an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actor {
    /// An intelliagent healed it locally on the server.
    Agent,
    /// The admin pair repaired it centrally (flag monitoring, crontab
    /// re-enable, resubmission machinery).
    Admin,
    /// A human operator or engineer.
    Human,
}

impl Actor {
    /// Lower-case tag for rendered output.
    pub fn label(self) -> &'static str {
        match self {
            Actor::Agent => "agent",
            Actor::Admin => "admin",
            Actor::Human => "human",
        }
    }

    /// Does this count as an automatic repair in the Figure 2
    /// accounting? (Everything the software layer did on its own.)
    pub fn is_automatic(self) -> bool {
        !matches!(self, Actor::Human)
    }
}

/// Why an incident burned (or should not burn) the error budget — the
/// actionable-failure taxonomy. Mixing these together makes the burn
/// rate un-actionable: a page about an operator-induced outage or an
/// auto-healed blip is noise, a page about a real service fault is the
/// signal the budget exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// The service itself failed and the failure needed (or still
    /// needs) human attention — the actionable class.
    ServiceFault,
    /// Induced by operators or the job stream (the `Human` and
    /// `Mid-crash` Figure 2 categories): real downtime, but the fix is
    /// on the client/workload side, not the service.
    ClientWorkload,
    /// A transient blip the software layer healed on its own without
    /// ever paging a human — the retried-abort shape that should not
    /// page anyone twice.
    TransientAbort,
}

impl FailureClass {
    /// Every class, taxonomy order. Index positions are stable and used
    /// as accumulator slots by the SLO tracker.
    pub const ALL: [FailureClass; 3] = [
        FailureClass::ServiceFault,
        FailureClass::ClientWorkload,
        FailureClass::TransientAbort,
    ];

    /// Lower-case tag used in exports and query filters.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::ServiceFault => "service-fault",
            FailureClass::ClientWorkload => "client-workload",
            FailureClass::TransientAbort => "transient-abort",
        }
    }

    /// Parse the closed-world label set; anything else is `None`.
    pub fn parse(s: &str) -> Option<FailureClass> {
        FailureClass::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Stable accumulator index (position in [`FailureClass::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether failures of this class should count against the error
    /// budget by default. Only real service faults are actionable.
    pub fn is_actionable(self) -> bool {
        matches!(self, FailureClass::ServiceFault)
    }
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classify a failure from the fields every ledger export has carried
/// since PR 1 — the injected fault's Figure 2 label, the resolving
/// actor (if closed), and whether humans were paged. Working over
/// exported strings (not live enums) is what makes evidence backfill a
/// pure, idempotent re-derivation: no re-simulation needed, and two
/// ingests of the same old export classify identically.
///
/// Precedence: operator/workload-induced categories are
/// `client-workload` regardless of who repaired them; otherwise a
/// fault the software layer closed on its own without paging anyone is
/// a `transient-abort`; everything else — escalated, human-repaired,
/// or still open — is a `service-fault` (the conservative fallback:
/// unclassifiable records burn budget rather than hide).
pub fn classify_failure(
    category_label: &str,
    resolving_actor: Option<&str>,
    escalated: bool,
) -> FailureClass {
    if matches!(category_label, "Human" | "Mid-crash") {
        return FailureClass::ClientWorkload;
    }
    let auto = matches!(resolving_actor, Some("agent") | Some("admin"));
    if auto && !escalated {
        return FailureClass::TransientAbort;
    }
    FailureClass::ServiceFault
}

/// One recorded repair try on an incident.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairAttempt {
    /// When the attempt was made (or recorded).
    pub at: SimTime,
    /// Who tried.
    pub actor: Actor,
    /// What they tried.
    pub action: String,
    /// Whether this attempt closed the incident.
    pub resolved: bool,
}

/// One tracked incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Identity.
    pub id: IncidentId,
    /// Figure 2 category.
    pub category: FaultCategory,
    /// The service (or host / infrastructure domain) whose availability
    /// this incident charges — the SLO accounting key. `"site"` when the
    /// incident is not attributable to one service.
    pub service: String,
    /// Free-form description (mechanism, target).
    pub description: String,
    /// Fault onset (injection time).
    pub onset: SimTime,
    /// When monitoring/humans first knew.
    pub detected: Option<SimTime>,
    /// When the cause was pinned down (rule fired, engineer engaged).
    pub diagnosed: Option<SimTime>,
    /// When service was restored.
    pub restored: Option<SimTime>,
    /// Every repair try, in order; the resolving one (if any) is the
    /// last and carries `resolved: true`. An agent try that failed to
    /// stick followed by the human escalation is two entries.
    pub attempts: Vec<RepairAttempt>,
    /// Humans were paged about it at some point.
    pub escalated: bool,
}

impl Incident {
    /// Who executed the repair that closed the incident, if closed.
    pub fn repaired_by(&self) -> Option<Actor> {
        self.attempts.iter().find(|a| a.resolved).map(|a| a.actor)
    }

    /// The repair action that closed the incident, if closed.
    pub fn repair_action(&self) -> Option<&str> {
        self.attempts
            .iter()
            .find(|a| a.resolved)
            .map(|a| a.action.as_str())
    }

    /// The full attempt history, oldest first.
    pub fn attempts(&self) -> &[RepairAttempt] {
        &self.attempts
    }

    /// This incident's failure class under the actionable-failure
    /// taxonomy (derived, never stored — so live runs and evidence
    /// backfill can never disagree).
    pub fn failure_class(&self) -> FailureClass {
        classify_failure(
            self.category.label(),
            self.repaired_by().map(Actor::label),
            self.escalated,
        )
    }

    /// Whether this incident counts against the error budget by
    /// default.
    pub fn is_actionable(&self) -> bool {
        self.failure_class().is_actionable()
    }

    /// Detection latency, if detected.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        self.detected.map(|d| d.since(self.onset))
    }

    /// Repair time (detected → restored), if both known.
    pub fn repair_time(&self) -> Option<SimDuration> {
        match (self.detected, self.restored) {
            (Some(d), Some(r)) => Some(r.since(d)),
            _ => None,
        }
    }

    /// Total downtime (onset → restored), if closed.
    pub fn downtime(&self) -> Option<SimDuration> {
        self.restored.map(|r| r.since(self.onset))
    }

    /// Whether the repair was automatic (agent or admin).
    pub fn auto_repaired(&self) -> bool {
        self.repaired_by().map(Actor::is_automatic).unwrap_or(false)
    }

    /// When (if ever) the record first occupied an automaton state —
    /// the projection [`Incident::lifecycle_violation`] interprets.
    /// `Escalated` is a flag, not a timestamp, so it projects to `None`.
    fn state_observed_at(&self, s: LifecycleState) -> Option<SimTime> {
        match s {
            LifecycleState::Injected => Some(self.onset),
            LifecycleState::Detected => self.detected,
            LifecycleState::Diagnosed => self.diagnosed,
            LifecycleState::Attempting => self.attempts.first().map(|a| a.at),
            LifecycleState::Escalated => None,
            LifecycleState::Repaired => self.restored,
        }
    }

    /// The ledger field name a spine state's timestamp is recorded in,
    /// for violation messages.
    fn state_field(s: LifecycleState) -> &'static str {
        match s {
            LifecycleState::Injected => "onset",
            LifecycleState::Detected => "detected",
            LifecycleState::Diagnosed => "diagnosed",
            LifecycleState::Attempting => "attempted",
            LifecycleState::Escalated => "escalated",
            LifecycleState::Repaired => "restored",
        }
    }

    /// A closed incident must witness a complete run of the declared
    /// lifecycle automaton ([`intelliqos_simkern::lifecycle`]); an open
    /// one must at least keep its observed states in automaton order.
    /// Returns the first violation found, or `None` when the record is
    /// sound.
    ///
    /// This is an *interpreter* over the declared automaton, not a list
    /// of hand-written field checks: the record is projected onto
    /// automaton states, timestamps must be non-decreasing along the
    /// one-shot spine (the states [`lifecycle::revisitable`] rules out
    /// of cycles), the completeness obligations for closed incidents
    /// are exactly the mandatory waypoints
    /// [`lifecycle::required_for_terminal`] derives from the edges, and
    /// the attempt-history checks are the `Attempting` self-loop's
    /// obligations (ordered retries, one resolving entry, nothing after
    /// it).
    pub fn lifecycle_violation(&self) -> Option<String> {
        if self.restored.is_none() {
            // Open incidents only need ordering on what exists so far:
            // detection precedes diagnosis. (The other spine pairs are
            // clamped by the transition API itself until close.)
            if let (Some(d), Some(g)) = (self.detected, self.diagnosed) {
                if g < d {
                    return Some(format!("{}: diagnosed {g} before detected {d}", self.id));
                }
            }
            return None;
        }

        // Mandatory waypoints: states on every Injected → Repaired
        // path must have been recorded. `Attempting`'s obligation is
        // the resolving-attempt block below (a resolved attempt is how
        // the record witnesses it).
        for s in lifecycle::required_for_terminal() {
            if s == LifecycleState::Attempting {
                continue;
            }
            if self.state_observed_at(s).is_none() {
                let what = match s {
                    LifecycleState::Detected => "detection",
                    LifecycleState::Diagnosed => "diagnosis",
                    other => Self::state_field(other),
                };
                return Some(format!("{}: closed without a {what} time", self.id));
            }
        }

        // Spine ordering: the one-shot states are visited at most once,
        // so their timestamps must be non-decreasing in automaton
        // order. (Revisitable states — the attempt/escalation loop —
        // interleave freely; an agent may attempt before the diagnosis
        // is final.)
        let spine: Vec<(LifecycleState, SimTime)> = LifecycleState::ALL
            .into_iter()
            .filter(|&s| !lifecycle::revisitable(s))
            .filter_map(|s| self.state_observed_at(s).map(|t| (s, t)))
            .collect();
        for w in spine.windows(2) {
            let ((a, ta), (b, tb)) = (w[0], w[1]);
            debug_assert!(
                lifecycle::reachable(a, b),
                "spine order must follow the automaton: {} -> {}",
                a.name(),
                b.name()
            );
            if tb < ta {
                return Some(format!(
                    "{}: {} {tb} before {} {ta}",
                    self.id,
                    Self::state_field(b),
                    Self::state_field(a)
                ));
            }
        }

        // Entering the terminal state requires the resolving attempt —
        // the automaton's `Attempting` waypoint — with an actor and an
        // action, exactly once, as the final history entry.
        if self.repaired_by().is_none() {
            return Some(format!("{}: closed without an actor", self.id));
        }
        if self.repair_action().map(str::is_empty).unwrap_or(true) {
            return Some(format!("{}: closed without a repair action", self.id));
        }
        if self.attempts.iter().filter(|a| a.resolved).count() > 1 {
            return Some(format!("{}: multiple resolving attempts", self.id));
        }
        if let Some(pos) = self.attempts.iter().position(|a| a.resolved) {
            if pos + 1 != self.attempts.len() {
                return Some(format!(
                    "{}: attempts recorded after the resolving one",
                    self.id
                ));
            }
        }
        // The `Attempting` self-loop: retries are ordered among
        // themselves.
        for pair in self.attempts.windows(2) {
            if pair[1].at < pair[0].at {
                return Some(format!("{}: attempt history out of order", self.id));
            }
        }
        None
    }
}

/// Aggregate statistics for one category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategoryTotals {
    /// Closed incidents.
    pub incidents: u64,
    /// Total downtime hours.
    pub downtime_hours: f64,
    /// Total detection-latency hours.
    pub detection_hours: f64,
    /// Total repair hours.
    pub repair_hours: f64,
    /// How many were auto-repaired.
    pub auto_repaired: u64,
    /// How many involved paging humans.
    pub escalated: u64,
}

impl CategoryTotals {
    /// Mean downtime per incident (0 when none).
    pub fn mean_downtime_hours(&self) -> f64 {
        if self.incidents == 0 {
            0.0
        } else {
            self.downtime_hours / self.incidents as f64
        }
    }

    /// Mean detection latency per incident (0 when none).
    pub fn mean_detection_hours(&self) -> f64 {
        if self.incidents == 0 {
            0.0
        } else {
            self.detection_hours / self.incidents as f64
        }
    }
}

/// The ledger.
#[derive(Debug, Clone, Default)]
pub struct DowntimeLedger {
    incidents: BTreeMap<IncidentId, Incident>,
    next: u64,
}

impl DowntimeLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        DowntimeLedger::default()
    }

    /// Open a new incident at fault onset, charged to the whole site.
    /// Prefer [`DowntimeLedger::open_scoped`] when the affected service
    /// or host is known — the SLO observatory keys availability on it.
    pub fn open(
        &mut self,
        category: FaultCategory,
        description: impl Into<String>,
        onset: SimTime,
    ) -> IncidentId {
        self.open_scoped(category, "site", description, onset)
    }

    /// Open a new incident at fault onset, charging the downtime to
    /// `service` (a service name, hostname, or infrastructure domain
    /// such as `"network"`).
    pub fn open_scoped(
        &mut self,
        category: FaultCategory,
        service: impl Into<String>,
        description: impl Into<String>,
        onset: SimTime,
    ) -> IncidentId {
        let id = IncidentId(self.next);
        self.next += 1;
        self.incidents.insert(
            id,
            Incident {
                id,
                category,
                service: service.into(),
                description: description.into(),
                onset,
                detected: None,
                diagnosed: None,
                restored: None,
                attempts: Vec::new(),
                escalated: false,
            },
        );
        id
    }

    /// Record detection (first knowledge). Idempotent — the earliest
    /// detection wins.
    pub fn detect(&mut self, id: IncidentId, at: SimTime) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            if inc.detected.is_none_or(|t| at < t) {
                inc.detected = Some(at);
            }
            true
        } else {
            false
        }
    }

    /// Record diagnosis (cause pinned down). Idempotent — the earliest
    /// diagnosis wins. Detection defaults to the same instant if it was
    /// never recorded.
    pub fn diagnose(&mut self, id: IncidentId, at: SimTime) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            if inc.diagnosed.is_none_or(|t| at < t) {
                inc.diagnosed = Some(at);
            }
            if inc.detected.is_none() {
                inc.detected = Some(at);
            }
            true
        } else {
            false
        }
    }

    /// Record a repair try that did **not** (or has not yet) closed the
    /// incident — e.g. an agent detecting and paging a fault it is not
    /// allowed to heal, before the human escalation. Ignored on closed
    /// incidents (the history is frozen at restore).
    pub fn attempt(
        &mut self,
        id: IncidentId,
        at: SimTime,
        actor: Actor,
        action: impl Into<String>,
    ) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            if inc.restored.is_none() {
                inc.attempts.push(RepairAttempt {
                    at,
                    actor,
                    action: action.into(),
                    resolved: false,
                });
            }
            true
        } else {
            false
        }
    }

    /// Record that humans were paged about the incident.
    pub fn escalate(&mut self, id: IncidentId, at: SimTime) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            inc.escalated = true;
            if inc.detected.is_none() {
                inc.detected = Some(at);
            }
            true
        } else {
            false
        }
    }

    /// Close the incident at restoration, appending the **resolving**
    /// attempt to the history. Detection and diagnosis default to the
    /// restore instant if they were never recorded — and are clamped
    /// *down* to it if they were pre-recorded for a later time (a manual
    /// pipeline may stamp its scheduled detection/engagement ahead of
    /// time, then lose the race to an agent repair). Attempts recorded
    /// for a *later* time than the resolution are dropped for the same
    /// reason. Every closed record is thus lifecycle-complete and
    /// ordered.
    pub fn restore(
        &mut self,
        id: IncidentId,
        at: SimTime,
        actor: Actor,
        action: impl Into<String>,
    ) -> bool {
        if let Some(inc) = self.incidents.get_mut(&id) {
            if inc.restored.is_none() {
                inc.restored = Some(at);
                let detected = inc.detected.map_or(at, |t| t.min(at));
                inc.detected = Some(detected);
                inc.diagnosed = Some(inc.diagnosed.map_or(at, |t| t.min(at)).max(detected));
                inc.attempts.retain(|a| a.at <= at);
                inc.attempts.push(RepairAttempt {
                    at,
                    actor,
                    action: action.into(),
                    resolved: true,
                });
            }
            true
        } else {
            false
        }
    }

    /// Incident accessor.
    pub fn get(&self, id: IncidentId) -> Option<&Incident> {
        self.incidents.get(&id)
    }

    /// All incidents (id order).
    pub fn incidents(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.values()
    }

    /// Incidents still open.
    pub fn open_incidents(&self) -> Vec<&Incident> {
        self.incidents
            .values()
            .filter(|i| i.restored.is_none())
            .collect()
    }

    /// Lifecycle violations across the whole ledger (empty when every
    /// record is sound — the triage invariant).
    pub fn lifecycle_violations(&self) -> Vec<String> {
        self.incidents
            .values()
            .filter_map(Incident::lifecycle_violation)
            .collect()
    }

    /// Per-category totals over closed incidents.
    pub fn totals(&self) -> BTreeMap<FaultCategory, CategoryTotals> {
        self.totals_scoped(crate::slo::SloScope::All)
    }

    /// Per-category totals over closed incidents admitted by `scope` —
    /// the Figure 2 accounting restricted to one failure class (or all
    /// of them). `totals_scoped(SloScope::All)` equals [`Self::totals`].
    pub fn totals_scoped(
        &self,
        scope: crate::slo::SloScope,
    ) -> BTreeMap<FaultCategory, CategoryTotals> {
        let mut out: BTreeMap<FaultCategory, CategoryTotals> = BTreeMap::new();
        for inc in self.incidents.values() {
            let Some(downtime) = inc.downtime() else {
                continue;
            };
            if !scope.admits(inc.failure_class()) {
                continue;
            }
            let t = out.entry(inc.category).or_default();
            t.incidents += 1;
            t.downtime_hours += downtime.as_hours_f64();
            if let Some(d) = inc.detection_latency() {
                t.detection_hours += d.as_hours_f64();
            }
            if let Some(r) = inc.repair_time() {
                t.repair_hours += r.as_hours_f64();
            }
            if inc.auto_repaired() {
                t.auto_repaired += 1;
            }
            if inc.escalated {
                t.escalated += 1;
            }
        }
        out
    }

    /// Total downtime hours over all closed incidents.
    pub fn total_downtime_hours(&self) -> f64 {
        self.totals().values().map(|t| t.downtime_hours).sum()
    }

    /// Render the Figure 2 style breakdown, category order of the
    /// figure legend.
    pub fn figure2_rows(&self) -> Vec<(FaultCategory, f64)> {
        let totals = self.totals();
        FaultCategory::ALL
            .iter()
            .map(|c| (*c, totals.get(c).map(|t| t.downtime_hours).unwrap_or(0.0)))
            .collect()
    }

    /// The Figure 2 breakdown restricted to one accounting scope.
    pub fn figure2_rows_scoped(&self, scope: crate::slo::SloScope) -> Vec<(FaultCategory, f64)> {
        let totals = self.totals_scoped(scope);
        FaultCategory::ALL
            .iter()
            .map(|c| (*c, totals.get(c).map(|t| t.downtime_hours).unwrap_or(0.0)))
            .collect()
    }

    /// Serialise the full ledger as JSON (incidents with their lifecycle
    /// plus the per-category totals). Hand-rolled because the build
    /// environment has no serde; the shape is stable and consumed by the
    /// triage tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"incidents\": [\n");
        let mut first = true;
        for inc in self.incidents.values() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    {");
            out.push_str(&format!("\"id\": {}, ", inc.id.0));
            out.push_str(&format!(
                "\"category\": {}, ",
                json_str(inc.category.label())
            ));
            out.push_str(&format!("\"service\": {}, ", json_str(&inc.service)));
            out.push_str(&format!(
                "\"description\": {}, ",
                json_str(&inc.description)
            ));
            out.push_str(&format!("\"onset\": {}, ", inc.onset.as_secs()));
            out.push_str(&format!("\"detected\": {}, ", json_opt_time(inc.detected)));
            out.push_str(&format!(
                "\"diagnosed\": {}, ",
                json_opt_time(inc.diagnosed)
            ));
            out.push_str(&format!("\"restored\": {}, ", json_opt_time(inc.restored)));
            out.push_str(&format!(
                "\"actor\": {}, ",
                inc.repaired_by()
                    .map(|a| json_str(a.label()))
                    .unwrap_or_else(|| "null".into())
            ));
            out.push_str(&format!(
                "\"action\": {}, ",
                inc.repair_action()
                    .map(json_str)
                    .unwrap_or_else(|| "null".into())
            ));
            out.push_str("\"attempts\": [");
            for (i, a) in inc.attempts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"at\": {}, \"actor\": {}, \"action\": {}, \"resolved\": {}}}",
                    a.at.as_secs(),
                    json_str(a.actor.label()),
                    json_str(&a.action),
                    a.resolved
                ));
            }
            out.push_str("], ");
            out.push_str(&format!("\"escalated\": {}, ", inc.escalated));
            out.push_str(&format!(
                "\"failure_class\": {}, ",
                json_str(inc.failure_class().label())
            ));
            out.push_str(&format!("\"is_actionable\": {}", inc.is_actionable()));
            out.push('}');
        }
        out.push_str("\n  ],\n  \"totals\": {\n");
        let totals = self.totals();
        let mut first = true;
        for (cat, t) in &totals {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {}: {{\"incidents\": {}, \"downtime_hours\": {:.4}, \"detection_hours\": {:.4}, \"repair_hours\": {:.4}, \"auto_repaired\": {}, \"escalated\": {}}}",
                json_str(cat.label()),
                t.incidents,
                t.downtime_hours,
                t.detection_hours,
                t.repair_hours,
                t.auto_repaired,
                t.escalated,
            ));
        }
        out.push_str(&format!(
            "\n  }},\n  \"total_downtime_hours\": {:.4},\n  \"open_incidents\": {},\n  \"taxonomy\": 1\n}}\n",
            self.total_downtime_hours(),
            self.open_incidents().len()
        ));
        out
    }
}

/// Minimal JSON string escaping (quote, backslash, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_time(t: Option<SimTime>) -> String {
    t.map(|t| t.as_secs().to_string())
        .unwrap_or_else(|| "null".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_simkern::SimDuration;

    #[test]
    fn incident_lifecycle() {
        let mut l = DowntimeLedger::new();
        let id = l.open(
            FaultCategory::HumanError,
            "killed oracle",
            SimTime::from_hours(1),
        );
        assert_eq!(l.open_incidents().len(), 1);
        assert!(l.detect(id, SimTime::from_hours(2)));
        assert!(l.diagnose(id, SimTime::from_hours(3)));
        assert!(l.restore(id, SimTime::from_hours(4), Actor::Human, "restart oracle"));
        let inc = l.get(id).unwrap();
        assert_eq!(inc.detection_latency(), Some(SimDuration::from_hours(1)));
        assert_eq!(inc.repair_time(), Some(SimDuration::from_hours(2)));
        assert_eq!(inc.downtime(), Some(SimDuration::from_hours(3)));
        assert_eq!(inc.diagnosed, Some(SimTime::from_hours(3)));
        assert_eq!(inc.repaired_by(), Some(Actor::Human));
        assert_eq!(inc.repair_action(), Some("restart oracle"));
        assert_eq!(inc.attempts().len(), 1);
        assert!(inc.attempts()[0].resolved);
        assert!(!inc.auto_repaired());
        assert!(inc.lifecycle_violation().is_none());
        assert!(l.open_incidents().is_empty());
        assert!(l.lifecycle_violations().is_empty());
    }

    #[test]
    fn scoped_open_records_service_and_exports_it() {
        let mut l = DowntimeLedger::new();
        let id = l.open_scoped(
            FaultCategory::MidJobDbCrash,
            "db003",
            "crash",
            SimTime::ZERO,
        );
        assert_eq!(l.get(id).unwrap().service, "db003");
        let plain = l.open(FaultCategory::Hardware, "cpu", SimTime::ZERO);
        assert_eq!(l.get(plain).unwrap().service, "site");
        assert!(l.to_json().contains("\"service\": \"db003\""));
    }

    #[test]
    fn earliest_detection_and_diagnosis_win() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::LsfError, "x", SimTime::ZERO);
        l.detect(id, SimTime::from_mins(5));
        l.detect(id, SimTime::from_mins(50));
        l.diagnose(id, SimTime::from_mins(40));
        l.diagnose(id, SimTime::from_mins(10));
        assert_eq!(l.get(id).unwrap().detected, Some(SimTime::from_mins(5)));
        assert_eq!(l.get(id).unwrap().diagnosed, Some(SimTime::from_mins(10)));
    }

    #[test]
    fn restore_defaults_detection_and_diagnosis() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::Hardware, "x", SimTime::ZERO);
        l.restore(id, SimTime::from_hours(2), Actor::Agent, "offline cpu");
        {
            let inc = l.get(id).unwrap();
            assert_eq!(inc.detected, Some(SimTime::from_hours(2)));
            assert_eq!(inc.diagnosed, Some(SimTime::from_hours(2)));
            assert!(inc.auto_repaired());
            assert!(inc.lifecycle_violation().is_none());
        }
        // Second restore is a no-op.
        l.restore(id, SimTime::from_hours(9), Actor::Human, "late");
        assert_eq!(l.get(id).unwrap().restored, Some(SimTime::from_hours(2)));
        assert_eq!(l.get(id).unwrap().repaired_by(), Some(Actor::Agent));
        assert_eq!(l.get(id).unwrap().attempts().len(), 1);
    }

    #[test]
    fn attempt_history_keeps_agent_try_then_human_escalation() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::FirewallNetwork, "switch", SimTime::ZERO);
        assert!(l.attempt(id, SimTime::from_mins(5), Actor::Agent, "detect-and-page"));
        l.escalate(id, SimTime::from_mins(5));
        l.restore(id, SimTime::from_hours(3), Actor::Human, "fix switch");
        let inc = l.get(id).unwrap();
        assert_eq!(inc.attempts().len(), 2);
        assert_eq!(inc.attempts()[0].actor, Actor::Agent);
        assert!(!inc.attempts()[0].resolved);
        assert_eq!(inc.attempts()[1].actor, Actor::Human);
        assert!(inc.attempts()[1].resolved);
        // The resolving attempt is what the headline accessors report.
        assert_eq!(inc.repaired_by(), Some(Actor::Human));
        assert_eq!(inc.repair_action(), Some("fix switch"));
        assert!(!inc.auto_repaired());
        assert!(inc.lifecycle_violation().is_none());
        // The history is frozen after close.
        assert!(l.attempt(id, SimTime::from_hours(4), Actor::Agent, "late"));
        assert_eq!(l.get(id).unwrap().attempts().len(), 2);
    }

    #[test]
    fn restore_drops_attempts_stamped_after_resolution() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::LsfError, "x", SimTime::ZERO);
        // A manual pipeline pre-records its (future) scheduled try, then
        // loses the race to an agent repair.
        l.attempt(id, SimTime::from_hours(5), Actor::Human, "scheduled");
        l.restore(id, SimTime::from_mins(10), Actor::Agent, "self-heal");
        let inc = l.get(id).unwrap();
        assert_eq!(inc.attempts().len(), 1);
        assert!(inc.attempts()[0].resolved);
        assert!(inc.lifecycle_violation().is_none());
    }

    #[test]
    fn escalation_is_recorded() {
        let mut l = DowntimeLedger::new();
        let id = l.open(
            FaultCategory::FirewallNetwork,
            "segment down",
            SimTime::ZERO,
        );
        l.escalate(id, SimTime::from_mins(5));
        l.restore(id, SimTime::from_hours(1), Actor::Human, "fix switch");
        let inc = l.get(id).unwrap();
        assert!(inc.escalated);
        assert_eq!(l.totals()[&FaultCategory::FirewallNetwork].escalated, 1);
    }

    #[test]
    fn totals_aggregate_per_category() {
        let mut l = DowntimeLedger::new();
        for i in 0..3u64 {
            let id = l.open(
                FaultCategory::MidJobDbCrash,
                "crash",
                SimTime::from_hours(i * 10),
            );
            l.detect(id, SimTime::from_hours(i * 10 + 1));
            let actor = if i % 2 == 0 {
                Actor::Agent
            } else {
                Actor::Human
            };
            l.restore(id, SimTime::from_hours(i * 10 + 3), actor, "restart db");
        }
        let open = l.open(
            FaultCategory::MidJobDbCrash,
            "still down",
            SimTime::from_hours(99),
        );
        let _ = open; // open incidents don't count
        let t = l.totals()[&FaultCategory::MidJobDbCrash];
        assert_eq!(t.incidents, 3);
        assert!((t.downtime_hours - 9.0).abs() < 1e-9);
        assert!((t.detection_hours - 3.0).abs() < 1e-9);
        assert!((t.repair_hours - 6.0).abs() < 1e-9);
        assert_eq!(t.auto_repaired, 2);
        assert!((t.mean_downtime_hours() - 3.0).abs() < 1e-9);
        assert!((l.total_downtime_hours() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn figure2_rows_cover_all_categories() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::FrontEndError, "hang", SimTime::ZERO);
        l.restore(id, SimTime::from_hours(2), Actor::Agent, "bounce");
        let rows = l.figure2_rows();
        assert_eq!(rows.len(), 8);
        let fe = rows
            .iter()
            .find(|(c, _)| *c == FaultCategory::FrontEndError)
            .unwrap();
        assert!((fe.1 - 2.0).abs() < 1e-9);
        // Untouched categories report zero.
        let hw = rows
            .iter()
            .find(|(c, _)| *c == FaultCategory::Hardware)
            .unwrap();
        assert_eq!(hw.1, 0.0);
    }

    #[test]
    fn bad_ids_are_rejected() {
        let mut l = DowntimeLedger::new();
        assert!(!l.detect(IncidentId(42), SimTime::ZERO));
        assert!(!l.diagnose(IncidentId(42), SimTime::ZERO));
        assert!(!l.escalate(IncidentId(42), SimTime::ZERO));
        assert!(!l.restore(IncidentId(42), SimTime::ZERO, Actor::Human, "x"));
    }

    #[test]
    fn lifecycle_violations_catch_incomplete_records() {
        let mut l = DowntimeLedger::new();
        let id = l.open(FaultCategory::Hardware, "x", SimTime::from_hours(1));
        // Hand-build a broken record: restored without actor.
        // (Only reachable by construction — the API always sets both.)
        let mut inc = l.get(id).unwrap().clone();
        inc.restored = Some(SimTime::from_hours(2));
        inc.detected = Some(SimTime::from_hours(1));
        inc.diagnosed = Some(SimTime::from_hours(1));
        assert!(inc
            .lifecycle_violation()
            .unwrap()
            .contains("without an actor"));
        // An unresolved attempt alone does not make an actor.
        inc.attempts.push(RepairAttempt {
            at: SimTime::from_hours(1),
            actor: Actor::Agent,
            action: "try".into(),
            resolved: false,
        });
        assert!(inc
            .lifecycle_violation()
            .unwrap()
            .contains("without an actor"));
        inc.attempts.push(RepairAttempt {
            at: SimTime::from_hours(2),
            actor: Actor::Human,
            action: String::new(),
            resolved: true,
        });
        assert!(inc
            .lifecycle_violation()
            .unwrap()
            .contains("without a repair action"));
        inc.attempts[1].action = "swap board".into();
        assert!(inc.lifecycle_violation().is_none());
        // Attempts after the resolving one are a violation.
        inc.attempts.push(RepairAttempt {
            at: SimTime::from_hours(3),
            actor: Actor::Agent,
            action: "late".into(),
            resolved: false,
        });
        assert!(inc
            .lifecycle_violation()
            .unwrap()
            .contains("after the resolving"));
        inc.attempts.pop();
        // Out-of-order attempt history.
        inc.attempts[0].at = SimTime::from_hours(9);
        inc.attempts[1].at = SimTime::from_hours(2);
        assert!(inc.lifecycle_violation().unwrap().contains("out of order"));
        inc.attempts[0].at = SimTime::from_hours(1);
        // Out-of-order lifecycle.
        inc.diagnosed = Some(SimTime::from_mins(10));
        assert!(inc.lifecycle_violation().unwrap().contains("diagnosed"));
    }

    #[test]
    fn json_export_is_wellformed_and_complete() {
        let mut l = DowntimeLedger::new();
        let a = l.open(
            FaultCategory::MidJobDbCrash,
            "db \"x\" crashed",
            SimTime::from_hours(1),
        );
        l.detect(a, SimTime::from_hours(1));
        l.diagnose(a, SimTime::from_hours(1));
        l.restore(a, SimTime::from_hours(2), Actor::Agent, "restart-service");
        let _open = l.open(
            FaultCategory::Hardware,
            "cpu|degrading",
            SimTime::from_hours(3),
        );
        let json = l.to_json();
        assert!(json.contains("\"incidents\": ["));
        assert!(json.contains("\"actor\": \"agent\""));
        assert!(json.contains("\"db \\\"x\\\" crashed\""));
        assert!(json.contains("\"restored\": null"));
        assert!(json.contains("\"open_incidents\": 1"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the tree).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }
}
