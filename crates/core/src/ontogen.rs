//! Generating the static ontologies from a built datacenter.
//!
//! The paper maintains ISSLs by hand ("manually updated", ≤200 entries
//! each) and writes one SLKT per server describing its should-be state.
//! When the world is built we materialise both: ISSL chunks into the
//! administration servers' shared pool, and each server's SLKT onto its
//! own disk under the agent install path — which is also where a human
//! operator would look for them.

use intelliqos_cluster::server::Server;
use intelliqos_ontology::issl::{Issl, IsslEntry, ISSL_MAX_ENTRIES};
use intelliqos_ontology::slkt::{Slkt, SlktApp, SlktHardware};
use intelliqos_services::registry::ServiceRegistry;

use crate::flags::AGENT_INSTALL_PATH;

/// Build the ISSL set for a datacenter: entries in hostname order,
/// chunked to the paper's 200-entry cap (a site larger than 200 hosts
/// simply maintains several lists).
pub fn generate_issls<'a, I>(servers: I, registry: &ServiceRegistry) -> Vec<Issl>
where
    I: Iterator<Item = &'a Server>,
{
    let mut lists = vec![Issl::new()];
    for (i, server) in servers.enumerate() {
        let entry = IsslEntry {
            hostname: server.hostname.clone(),
            ip: format!("10.0.{}.{}", server.id.0 / 256, server.id.0 % 256),
            services: registry
                .on_server(server.id)
                .map(|s| s.spec.name.clone())
                .collect(),
        };
        if i > 0 && i % ISSL_MAX_ENTRIES == 0 {
            lists.push(Issl::new());
        }
        lists
            .last_mut()
            // qoslint::allow(no-panic, lists starts non-empty and only grows)
            .expect("at least one list")
            .add(entry)
            // qoslint::allow(no-panic, the rotation above keeps the tail list under ISSL_MAX_ENTRIES)
            .expect("chunking keeps lists under the cap");
    }
    lists
}

/// Build the SLKT describing one server's should-be state from the
/// deployed service specs.
pub fn generate_slkt(server: &Server, registry: &ServiceRegistry) -> Slkt {
    Slkt {
        hostname: server.hostname.clone(),
        ip: format!("10.0.{}.{}", server.id.0 / 256, server.id.0 % 256),
        hardware: SlktHardware {
            model: server.spec.model.to_string(),
            cpus: server.spec.cpus,
            ram_gb: server.spec.ram_gb,
            disks: server.spec.disks,
        },
        apps: registry
            .on_server(server.id)
            .map(|svc| SlktApp {
                name: svc.spec.name.clone(),
                app_type: svc.spec.kind.type_str().to_string(),
                version: svc.spec.version.clone(),
                binary_path: svc.spec.binary_path.clone(),
                port: svc.spec.port,
                processes: svc
                    .spec
                    .processes
                    .iter()
                    .map(|p| (p.name.clone(), p.count))
                    .collect(),
                startup_sequence: svc
                    .spec
                    .startup
                    .iter()
                    .map(|s| s.component.clone())
                    .collect(),
                depends_on: svc.spec.depends_on.clone(),
                mounts: svc.spec.required_mounts.clone(),
                connect_timeout_secs: svc.spec.connect_timeout.as_secs() as u32,
            })
            .collect(),
    }
}

/// Path of a server's SLKT file on its own disk.
pub fn slkt_path(hostname: &str) -> String {
    format!("{AGENT_INSTALL_PATH}/slkt/{hostname}.slkt")
}

/// Write the server's SLKT onto its disk (done once at install time).
pub fn install_slkt(server: &mut Server, registry: &ServiceRegistry) {
    let slkt = generate_slkt(server, registry);
    let lines = slkt.to_doc().to_lines();
    let _ = server.fs.write(
        slkt_path(&server.hostname),
        lines,
        intelliqos_simkern::SimTime::ZERO,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_services::spec::{DbEngine, ServiceSpec};

    fn site(n: u32) -> (Vec<Server>, ServiceRegistry) {
        let mut servers = Vec::new();
        let mut reg = ServiceRegistry::new();
        for i in 0..n {
            let s = Server::new(
                ServerId(i),
                format!("db{i:03}"),
                HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
                Site::new("London", "LDN"),
            );
            reg.deploy(
                ServiceSpec::database(format!("trades-db-{i}"), DbEngine::Oracle),
                s.id,
            );
            servers.push(s);
        }
        (servers, reg)
    }

    #[test]
    fn issl_chunks_respect_the_200_entry_cap() {
        let (servers, reg) = site(450);
        let lists = generate_issls(servers.iter(), &reg);
        assert_eq!(lists.len(), 3); // 200 + 200 + 50
        assert_eq!(lists[0].len(), 200);
        assert_eq!(lists[1].len(), 200);
        assert_eq!(lists[2].len(), 50);
        // Entries carry the services.
        assert_eq!(
            lists[0].entries()[0].services,
            vec!["trades-db-0".to_string()]
        );
        // Round-trips through the flat format.
        let text = lists[0].to_doc().to_text();
        assert_eq!(Issl::parse_text(&text).unwrap(), lists[0]);
    }

    #[test]
    fn small_site_fits_one_issl() {
        let (servers, reg) = site(42);
        let lists = generate_issls(servers.iter(), &reg);
        assert_eq!(lists.len(), 1);
        assert_eq!(lists[0].len(), 42);
    }

    #[test]
    fn slkt_mirrors_the_deployed_spec() {
        let (mut servers, reg) = site(1);
        let slkt = generate_slkt(&servers[0], &reg);
        assert_eq!(slkt.hostname, "db000");
        assert_eq!(slkt.hardware.cpus, 8);
        let app = slkt.app("trades-db-0").expect("app present");
        assert_eq!(app.app_type, "db-oracle");
        assert_eq!(app.processes.len(), 3);
        assert_eq!(
            app.startup_sequence,
            vec!["listener", "instance", "recovery"]
        );
        assert_eq!(app.connect_timeout_secs, 30);
        // Install writes the flat file onto the server's own disk.
        install_slkt(&mut servers[0], &reg);
        let file = servers[0].fs.read(&slkt_path("db000")).unwrap();
        let parsed = Slkt::parse_text(&file.lines.join("\n")).unwrap();
        assert_eq!(parsed, slkt);
    }
}
