//! Scenario configuration, presets, and the run report.
//!
//! A scenario is a pure function of `(ScenarioConfig, seed)`. The
//! [`financial_site`](ScenarioConfig::financial_site) preset reproduces
//! the paper's customer environment (100 database + 55 transaction + 60
//! front-end servers, LSF batch analytics, 24×7 operation); the paired
//! **before/after** experiment of Figure 2 runs it once under
//! [`ManagementMode::ManualOps`] and once under
//! [`ManagementMode::Intelliagents`] with the same seed — the exogenous
//! fault tape and the workload tape are identical in both runs.

use std::collections::BTreeMap;

use intelliqos_cluster::faults::{FaultCategory, FaultRates};
use intelliqos_lsf::workload::WorkloadConfig;
use intelliqos_services::spec::ServiceSpec;
use intelliqos_simkern::{SimDuration, YEAR};

use crate::agents::AgentParts;
use crate::downtime::CategoryTotals;
use crate::slo::SloConfig;

/// Who runs the datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagementMode {
    /// Year 1: BMC-Patrol-style notify-only monitoring + human repair.
    ManualOps,
    /// Year 2: the intelliagent layer (plus humans for what agents
    /// cannot heal).
    Intelliagents,
}

/// Policy used when *resubmitting* failed batch jobs (initial
/// submissions are always the users' manual sticky choices, as at the
/// customer site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedPolicy {
    /// The paper's DGSPL shortlist, best choice first.
    Dgspl,
    /// Uniform random over acceptable servers.
    Random,
    /// The analysts pick their favourites again.
    ManualSticky,
}

/// Full scenario parameterisation.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Who manages the datacenter.
    pub mode: ManagementMode,
    /// Database servers (the LSF execution tier).
    pub db_servers: u32,
    /// Transaction-processing servers.
    pub tx_servers: u32,
    /// Front-end application servers.
    pub fe_servers: u32,
    /// Agent cron cadence — the paper's X (5 minutes).
    pub agent_period: SimDuration,
    /// Admin flag-check cadence — X+5.
    pub admin_period: SimDuration,
    /// DGSPL regeneration cadence (~15 minutes).
    pub dgspl_period: SimDuration,
    /// Overload-crash hazard evaluation cadence.
    pub crash_sweep_period: SimDuration,
    /// End-to-end dummy-transaction cadence (15–30 minutes in §3.6).
    pub e2e_period: SimDuration,
    /// Performance-collection cadence ("every 10 or 15 minutes", §3.5).
    pub perf_period: SimDuration,
    /// Per-database-server concurrent job limit.
    pub job_limit_per_server: u32,
    /// Exogenous fault rates.
    pub fault_rates: FaultRates,
    /// Analyst workload.
    pub workload: WorkloadConfig,
    /// Which agent parts are active (ABL-PARTS flips these).
    pub agent_parts: AgentParts,
    /// Resubmission policy (T-RESCHED compares these).
    pub resched: ReschedPolicy,
    /// Additional services deployed after the standard tiers, as
    /// `(hostname, spec)` pairs. This is how scenario authors model
    /// site-specific daemons — and how the ontology-checker tests seed
    /// deliberately broken topologies (dependency cycles, duplicate
    /// ports, dangling references) that [`crate::world::World`] must
    /// refuse to construct.
    pub extra_services: Vec<(String, ServiceSpec)>,
    /// Declared availability objectives: the scenario-wide target,
    /// burn window/threshold, the burn scope (which failure classes
    /// consume budget), and per-service target overrides. Validated at
    /// `World::try_build` alongside the site ontology — a target
    /// outside `(0, 1)`, a duplicate key, or a key naming no deployed
    /// service, host, or infrastructure domain refuses construction.
    pub slo: SloConfig,
}

impl ScenarioConfig {
    /// The paper's customer site, full scale, one simulated year.
    pub fn financial_site(seed: u64, mode: ManagementMode) -> Self {
        ScenarioConfig {
            seed,
            horizon: SimDuration::from_secs(YEAR),
            mode,
            db_servers: 100,
            tx_servers: 55,
            fe_servers: 60,
            agent_period: SimDuration::from_mins(5),
            admin_period: SimDuration::from_mins(10),
            dgspl_period: SimDuration::from_mins(15),
            // Deliberately not a multiple of the agent period: hazard
            // evaluation must not phase-lock with the sweeps, or crash
            // onsets land exactly on detection instants and measured
            // latency collapses to zero.
            crash_sweep_period: SimDuration::from_mins(13),
            e2e_period: SimDuration::from_mins(20),
            perf_period: SimDuration::from_mins(15),
            job_limit_per_server: 3,
            fault_rates: FaultRates::default(),
            workload: WorkloadConfig::default(),
            agent_parts: AgentParts::all(),
            resched: ReschedPolicy::Dgspl,
            extra_services: Vec::new(),
            // Differentiated objectives, not one constant: the shared
            // infrastructure singletons carry tighter targets than the
            // 99.99 % scenario default (one LSF master or DNS outage
            // stalls every analyst), while the network domain — whose
            // incidents aggregate whole-segment outages — reports
            // against a deliberately looser budget line.
            slo: SloConfig {
                service_targets: vec![
                    ("dns-1".to_string(), 0.99999),
                    ("lsf-master".to_string(), 0.99999),
                    ("mktdata-1".to_string(), 0.99995),
                    ("network".to_string(), 0.9995),
                ],
                ..SloConfig::default()
            },
        }
    }

    /// A small datacenter for tests and quick experiments: 8 database,
    /// 3 transaction, 3 front-end servers, two simulated weeks.
    pub fn small(seed: u64, mode: ManagementMode) -> Self {
        let mut cfg = ScenarioConfig::financial_site(seed, mode);
        cfg.db_servers = 8;
        cfg.tx_servers = 3;
        cfg.fe_servers = 3;
        cfg.horizon = SimDuration::from_days(14);
        // The full-site rates would give a two-week window only a
        // couple of faults; scale them up so short runs still exercise
        // every mechanism.
        cfg.fault_rates = cfg.fault_rates.scaled(6.0);
        // Scale the workload down with the server count so per-server
        // pressure stays comparable.
        cfg.workload.day_rate_per_hour = 3.0;
        cfg.workload.night_rate_per_hour = 2.0;
        cfg.workload.weekend_rate_per_hour = 1.0;
        cfg.workload.analysts = 8;
        cfg
    }

    /// Total servers including the two administration servers.
    pub fn total_servers(&self) -> u32 {
        self.db_servers + self.tx_servers + self.fe_servers + 2
    }
}

/// Per-category detection/repair summary row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryRow {
    /// The category.
    pub category: FaultCategory,
    /// Aggregates.
    pub totals: CategoryTotals,
}

/// What a scenario run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Mode the run used.
    pub mode: ManagementMode,
    /// Downtime hours per Figure 2 category (figure legend order).
    pub downtime_hours: Vec<(FaultCategory, f64)>,
    /// Full per-category aggregates.
    pub categories: BTreeMap<FaultCategory, CategoryTotals>,
    /// Total downtime hours across categories.
    pub total_downtime_hours: f64,
    /// Total closed incidents.
    pub incidents: u64,
    /// LSF counters.
    pub lsf: intelliqos_lsf::cluster::LsfStats,
    /// Endogenous database mid-job crashes that occurred.
    pub db_crashes: u64,
    /// Notifications sent (email + SMS + console).
    pub notifications: usize,
    /// Incidents still open at the horizon (excluded from totals).
    pub open_incidents: usize,
    /// Threshold breaches recorded by the performance intelliagents.
    pub threshold_breaches: u64,
}

impl ScenarioReport {
    /// Downtime hours for one category.
    pub fn hours(&self, cat: FaultCategory) -> f64 {
        self.downtime_hours
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, h)| *h)
            .unwrap_or(0.0)
    }

    /// Mean detection latency (hours) for one category.
    pub fn mean_detection_hours(&self, cat: FaultCategory) -> f64 {
        self.categories
            .get(&cat)
            .map(|t| t.mean_detection_hours())
            .unwrap_or(0.0)
    }

    /// Render the Figure 2 style table as ASCII lines.
    pub fn figure2_table(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "{:<16} {:>10} {:>10} {:>12} {:>10}",
            "category", "hours", "incidents", "mean-detect", "auto-fix"
        ));
        for (cat, hours) in &self.downtime_hours {
            let t = self.categories.get(cat).copied().unwrap_or_default();
            lines.push(format!(
                "{:<16} {:>10.1} {:>10} {:>11.2}h {:>10}",
                cat.label(),
                hours,
                t.incidents,
                t.mean_detection_hours(),
                t.auto_repaired,
            ));
        }
        lines.push(format!(
            "{:<16} {:>10.1}",
            "TOTAL", self.total_downtime_hours
        ));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn financial_site_matches_paper_shape() {
        let cfg = ScenarioConfig::financial_site(1, ManagementMode::ManualOps);
        assert_eq!(cfg.db_servers, 100);
        assert_eq!(cfg.tx_servers, 55);
        assert_eq!(cfg.fe_servers, 60);
        assert_eq!(cfg.total_servers(), 217);
        assert_eq!(cfg.agent_period, SimDuration::from_mins(5));
        assert_eq!(cfg.admin_period, SimDuration::from_mins(10));
        assert_eq!(cfg.horizon.as_secs(), YEAR);
    }

    #[test]
    fn presets_declare_differentiated_slo_targets() {
        let cfg = ScenarioConfig::financial_site(1, ManagementMode::ManualOps);
        assert!((cfg.slo.target_for("lsf-master") - 0.99999).abs() < 1e-12);
        assert!((cfg.slo.target_for("dns-1") - 0.99999).abs() < 1e-12);
        assert!(cfg.slo.target_for("network") < cfg.slo.availability_target);
        // Anything undeclared reports against the scenario default.
        assert!((cfg.slo.target_for("trades-db-000") - cfg.slo.availability_target).abs() < 1e-12);
        // The small preset inherits the declarations.
        let small = ScenarioConfig::small(1, ManagementMode::Intelliagents);
        assert_eq!(small.slo.service_targets, cfg.slo.service_targets);
    }

    #[test]
    fn small_preset_is_small() {
        let cfg = ScenarioConfig::small(1, ManagementMode::Intelliagents);
        assert!(cfg.total_servers() < 20);
        assert!(cfg.horizon < SimDuration::from_days(30));
    }
}
