//! The store/scan equivalence property: for any synthetic evidence
//! directory — run exports with random incidents and trace events, SLO
//! reports written by the real `SloTracker`, spill directories written
//! by the real `SpillSink` (with random chunk sizes and randomly
//! truncated final chunks) — every random query answered through the
//! indexed store equals the linear scan over the same evidence,
//! record-for-record, and the indexed answer never re-opens a raw
//! evidence file. Correlation queries additionally render byte-
//! identical triage timelines, which is the `triage --evdb` guarantee.

#[path = "../../../tests/common/mod.rs"]
mod common;

use std::path::{Path, PathBuf};

use common::{cases, Gen};
use intelliqos_core::downtime::{classify_failure, FailureClass};
use intelliqos_core::slo::{SloConfig, SloTracker};
use intelliqos_core::IncidentId;
use intelliqos_evdb::{render_corr_timelines, scan_query, Kind, Query, Store};
use intelliqos_simkern::trace::{SpillConfig, Subsystem, Trace, TraceOptions, TRACE_REGISTRY};
use intelliqos_simkern::{SimDuration, SimTime};

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn opt_num(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn opt_str(v: Option<&str>) -> String {
    v.map_or_else(|| "null".to_string(), json_str)
}

const CATEGORIES: &[&str] = &[
    "MidJobDbCrash",
    "DiskFull",
    "DaemonHang",
    "NfsStale",
    "Mid-crash",
    "Human",
];
const SERVICES: &[&str] = &["db003", "web001", "lsf", "mail", "nfs02"];
const CODES: &[&str] = &["inject", "detect", "diagnose", "heal", "sweep", "dispatch"];
const ACTORS: &[&str] = &["agent", "admin", "human"];

/// Write one synthetic run export (`{run}.json`) plus its SLO report
/// (`{run}_slo.json`); returns the incident ids it used.
fn write_run(dir: &Path, run: &str, g: &mut Gen) -> Vec<u64> {
    let n_inc = g.usize_in(0, 6);
    let mut tracker = SloTracker::new(SloConfig::default(), 8);
    let mut incidents = Vec::new();
    let mut ids = Vec::new();
    for id in 0..n_inc as u64 {
        ids.push(id);
        let onset = g.u64_in(0, 160_000);
        let detected = g.bool().then(|| onset + g.u64_in(1, 600));
        let diagnosed = detected.map(|d| d + g.u64_in(1, 300)).filter(|_| g.bool());
        let restored = detected
            .map(|d| d + g.u64_in(1, 7_000))
            .filter(|_| g.bool());
        let service = *g.choose(SERVICES);
        let category = *g.choose(CATEGORIES);
        let actor = g.bool().then(|| {
            if g.bool() {
                g.choose(ACTORS).to_string()
            } else {
                g.ident()
            }
        });
        let escalated = g.bool();
        let class = classify_failure(category, actor.as_deref(), escalated);
        if let (Some(det), Some(rest)) = (detected, restored) {
            tracker.on_close(
                service,
                IncidentId(id),
                class,
                SimTime::from_secs(onset),
                SimTime::from_secs(det),
                SimTime::from_secs(rest),
            );
        }
        let n_att = g.usize_in(0, 3);
        let attempts: Vec<String> = (0..n_att)
            .map(|_| {
                format!(
                    "{{\"at\": {}, \"actor\": {}, \"action\": {}, \"resolved\": {}}}",
                    onset + g.u64_in(0, 1000),
                    json_str(&g.ident()),
                    json_str(&g.ascii_value(12)),
                    g.bool()
                )
            })
            .collect();
        // Half the incidents carry explicit taxonomy fields (the shape
        // current exports write); the rest are pre-taxonomy and must be
        // backfilled identically by both backends at extract time.
        let taxonomy = if g.bool() {
            format!(
                ", \"failure_class\": {}, \"is_actionable\": {}",
                json_str(class.label()),
                class.is_actionable()
            )
        } else {
            String::new()
        };
        incidents.push(format!(
            "{{\"id\": {id}, \"category\": {}, \"service\": {}, \"description\": {}, \
             \"onset\": {onset}, \"detected\": {}, \"diagnosed\": {}, \"restored\": {}, \
             \"actor\": {}, \"action\": {}, \"escalated\": {escalated}{taxonomy}, \
             \"attempts\": [{}]}}",
            json_str(category),
            json_str(service),
            json_str(&g.ascii_value(20)),
            opt_num(detected),
            opt_num(diagnosed),
            opt_num(restored),
            opt_str(actor.as_deref()),
            opt_str(g.bool().then(|| g.ascii_value(10)).as_deref()),
            attempts.join(", ")
        ));
    }
    let n_ev = g.usize_in(0, 24);
    let mut events = Vec::new();
    for seq in 0..n_ev as u64 {
        let corr = if !ids.is_empty() && g.bool() {
            format!(",\"corr\":{}", *g.choose(&ids))
        } else {
            String::new()
        };
        let code = g.choose(CODES);
        events.push(format!(
            "{{\"seq\":{seq},\"at\":{},\"subsystem\":{},\"code\":{}{corr},\"detail\":{}}}",
            g.u64_in(0, 170_000),
            json_str(g.choose(Subsystem::ALL.as_slice()).tag()),
            json_str(code),
            json_str(&g.ascii_value(16))
        ));
    }
    let export = format!(
        "{{\n\"seed\": 1,\n\"mode\": \"Test\",\n\"ledger\": {{\"incidents\": [{}]}},\n\
         \"trace\": {{\"events\": [{}]}}\n}}\n",
        incidents.join(", "),
        events.join(", ")
    );
    std::fs::write(dir.join(format!("{run}.json")), export).unwrap();
    let report = tracker.report(SimDuration::from_days(2));
    std::fs::write(
        dir.join(format!("{run}_slo.json")),
        report.to_json_with_run(1, "Test"),
    )
    .unwrap();
    ids
}

/// Write a real spill directory under `dir/{name}` with random chunk
/// rotation, optionally chopping the final chunk mid-record.
fn write_spill(dir: &Path, name: &str, ids: &[u64], g: &mut Gen) {
    let spill_dir = dir.join(name);
    let chunk_records = g.usize_in(2, 9);
    let mut t = Trace::with_options(TraceOptions {
        capacity: 4,
        spill: Some(SpillConfig {
            dir: spill_dir.clone(),
            chunk_records,
            tail_capacity: 0,
        }),
        ..TraceOptions::default()
    });
    let n = g.usize_in(1, 30);
    for _ in 0..n {
        let at = SimTime::from_secs(g.u64_in(0, 170_000));
        // The live `Trace` enforces the closed world, so a real spill
        // can only ever hold registered (subsystem, code) pairs.
        let spec = g.choose(TRACE_REGISTRY);
        let detail = g.ascii_value(16);
        t.emit(at, spec.subsystem, spec.code, || detail.clone());
        if !ids.is_empty() && g.bool() {
            t.correlate_last(*g.choose(ids));
        }
    }
    t.flush().unwrap();
    if g.bool() {
        // Chop the final chunk mid-record (killed-run shape).
        let mut chunks: Vec<PathBuf> = std::fs::read_dir(&spill_dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("chunk-"))
            })
            .collect();
        chunks.sort();
        if let Some(last) = chunks.last() {
            let text = std::fs::read_to_string(last).unwrap();
            if text.len() > 4 {
                let cut = g.usize_in(1, text.len().min(40));
                std::fs::write(last, &text[..text.len() - cut]).unwrap();
            }
        }
    }
}

fn random_query(g: &mut Gen, runs: &[String]) -> Query {
    let mut q = Query::default();
    if g.usize_in(0, 4) == 0 {
        q.kind = Some(*g.choose(&[Kind::Incident, Kind::Trace, Kind::Slo]));
    }
    if g.bool() {
        q.run = Some(if g.bool() {
            g.choose(runs).clone()
        } else {
            "no_such_run".to_string()
        });
    }
    if g.bool() {
        q.service = Some(g.choose(SERVICES).to_string());
    }
    if g.usize_in(0, 3) == 0 {
        q.category = Some(if g.bool() {
            g.choose(CATEGORIES).to_string()
        } else {
            g.choose(CODES).to_string()
        });
    }
    if g.usize_in(0, 3) == 0 {
        q.subsystem = Some(g.choose(Subsystem::ALL.as_slice()).tag().to_string());
    }
    if g.usize_in(0, 3) == 0 {
        q.class = Some(if g.bool() {
            g.choose(&FailureClass::ALL).label().to_string()
        } else {
            // Programmatic queries skip the CLI's closed-world check;
            // both backends must answer an unknown class emptily.
            "no-such-class".to_string()
        });
    }
    if g.usize_in(0, 4) == 0 {
        q.actionable = Some(g.bool());
    }
    if g.usize_in(0, 3) == 0 {
        q.corr = Some(g.u64_in(0, 6));
    }
    if g.usize_in(0, 3) == 0 {
        let t0 = g.u64_in(0, 160_000);
        q.window = Some((t0, t0 + g.u64_in(0, 90_000)));
    }
    q
}

#[test]
fn every_indexed_query_matches_the_linear_scan() {
    cases(25, |g| {
        let trial_dir = std::env::temp_dir().join(format!(
            "intelliqos-evdb-prop-{}",
            g.u64_in(0, u64::MAX - 1)
        ));
        let evidence = trial_dir.join("evidence");
        let store_dir = trial_dir.join("store");
        let _ = std::fs::remove_dir_all(&trial_dir);
        std::fs::create_dir_all(&evidence).unwrap();

        let n_runs = g.usize_in(1, 4);
        let mut runs = Vec::new();
        let mut all_ids = Vec::new();
        for i in 0..n_runs {
            let run = format!("{}_{i}", g.ident());
            let ids = write_run(&evidence, &run, g);
            all_ids.extend(ids);
            runs.push(run);
        }
        if g.bool() {
            let name = format!("spill_{}", g.usize_in(0, 100));
            write_spill(&evidence, &name, &all_ids, g);
            runs.push(name);
        }
        // A bystander document the extractor must leave alone.
        std::fs::write(
            evidence.join("ontology_check_site.json"),
            "{\"report\": \"ontology\", \"findings\": []}\n",
        )
        .unwrap();

        Store::build(&evidence, &store_dir).unwrap();
        let store = Store::open(&store_dir).unwrap();

        for _ in 0..6 {
            let q = random_query(g, &runs);
            let (indexed, stats) = store.query(&q).unwrap();
            let (scanned, _, _) = scan_query(&evidence, &q).unwrap();
            assert_eq!(
                indexed, scanned,
                "indexed result diverged from scan for {q:?}"
            );
            assert_eq!(
                stats.source_files_read, 0,
                "indexed query re-opened raw evidence for {q:?}"
            );
            assert_eq!(stats.rows_matched as usize, indexed.len());
        }

        // Correlation timelines — the `triage --evdb` path — are byte-
        // identical between backends.
        for id in 0..3 {
            let q = Query {
                corr: Some(id),
                ..Query::default()
            };
            let (indexed, _) = store.query(&q).unwrap();
            let (scanned, _, _) = scan_query(&evidence, &q).unwrap();
            assert_eq!(
                render_corr_timelines(&indexed, id),
                render_corr_timelines(&scanned, id),
                "timelines diverged for incident {id}"
            );
        }

        let _ = std::fs::remove_dir_all(&trial_dir);
    });
}

/// Re-ingesting the same evidence is byte-stable: every store file is
/// reproduced identically, so the store can be rebuilt anywhere and
/// compared with a plain `diff -r`.
#[test]
fn ingest_is_deterministic_across_rebuilds() {
    cases(5, |g| {
        let trial_dir = std::env::temp_dir().join(format!(
            "intelliqos-evdb-rebuild-{}",
            g.u64_in(0, u64::MAX - 1)
        ));
        let evidence = trial_dir.join("evidence");
        let _ = std::fs::remove_dir_all(&trial_dir);
        std::fs::create_dir_all(&evidence).unwrap();
        let ids = write_run(&evidence, "run_a", g);
        write_spill(&evidence, "spill_a", &ids, g);

        let snapshot = |dir: &Path| -> Vec<(String, Vec<u8>)> {
            let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .collect();
            files.sort();
            files
                .into_iter()
                .map(|p| {
                    (
                        p.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read(&p).unwrap(),
                    )
                })
                .collect()
        };
        let store_dir = trial_dir.join("store");
        Store::build(&evidence, &store_dir).unwrap();
        let first = snapshot(&store_dir);
        Store::build(&evidence, &store_dir).unwrap();
        let second = snapshot(&store_dir);
        assert_eq!(first, second, "rebuild changed store bytes");
        let _ = std::fs::remove_dir_all(&trial_dir);
    });
}

/// Incremental re-ingest is byte-identical to a full rebuild — on
/// untouched evidence it parses nothing, and after adding a run and
/// deleting a file it re-parses only what changed, yet every store
/// file except the `ingest_report.json` cost counters matches a
/// from-scratch build over the same evidence.
#[test]
fn incremental_reingest_matches_a_full_rebuild_byte_for_byte() {
    cases(5, |g| {
        let trial_dir = std::env::temp_dir().join(format!(
            "intelliqos-evdb-incr-{}",
            g.u64_in(0, u64::MAX - 1)
        ));
        let evidence = trial_dir.join("evidence");
        let _ = std::fs::remove_dir_all(&trial_dir);
        std::fs::create_dir_all(&evidence).unwrap();
        let ids_a = write_run(&evidence, "run_a", g);
        write_run(&evidence, "run_b", g);
        write_spill(&evidence, "spill_a", &ids_a, g);

        // Snapshot everything except the ingest report, whose
        // parsed/reused counters legitimately differ between paths.
        let snapshot = |dir: &Path| -> Vec<(String, Vec<u8>)> {
            let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .collect();
            files.sort();
            files
                .into_iter()
                .filter(|p| p.file_name().is_none_or(|n| n != "ingest_report.json"))
                .map(|p| {
                    (
                        p.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read(&p).unwrap(),
                    )
                })
                .collect()
        };

        let store_dir = trial_dir.join("store");
        Store::build(&evidence, &store_dir).unwrap();
        let full = snapshot(&store_dir);

        // Untouched evidence: nothing re-parses, bytes unchanged.
        let report = Store::build_incremental(&evidence, &store_dir).unwrap();
        assert_eq!(report.sources_parsed, 0, "untouched evidence re-parsed");
        assert_eq!(report.sources_reused, report.sources.len() as u64);
        assert_eq!(snapshot(&store_dir), full, "no-op re-ingest changed bytes");

        // Change the evidence: add a run, drop run_b's SLO report so
        // run_b must re-parse while run_a and the spill stay reusable.
        write_run(&evidence, "run_c", g);
        let _ = std::fs::remove_file(evidence.join("run_b_slo.json"));
        let report = Store::build_incremental(&evidence, &store_dir).unwrap();
        assert!(
            report.sources_reused > 0,
            "unchanged runs should be copied forward"
        );
        assert!(report.sources_parsed > 0, "changed evidence must re-parse");

        let fresh_dir = trial_dir.join("fresh");
        Store::build(&evidence, &fresh_dir).unwrap();
        assert_eq!(
            snapshot(&store_dir),
            snapshot(&fresh_dir),
            "incremental store diverged from a full rebuild"
        );
        let _ = std::fs::remove_dir_all(&trial_dir);
    });
}

/// Backfill idempotency: a pre-taxonomy export — incidents without
/// `failure_class`/`is_actionable`, an SLO report with one document
/// target and no per-row targets — ingests cleanly, the derived
/// classification is queryable through both backends, and re-ingesting
/// the same evidence (incrementally or from scratch) reproduces every
/// store byte without touching the evidence files.
#[test]
fn pretaxonomy_evidence_backfills_idempotently() {
    let trial_dir = std::env::temp_dir().join("intelliqos-evdb-backfill");
    let evidence = trial_dir.join("evidence");
    let _ = std::fs::remove_dir_all(&trial_dir);
    std::fs::create_dir_all(&evidence).unwrap();

    // One incident per expected class, written in the exact field order
    // the pre-taxonomy exporter used.
    let export = concat!(
        "{\n\"seed\": 7,\n\"mode\": \"Test\",\n\"ledger\": {\"incidents\": [",
        "{\"id\": 0, \"category\": \"Hardware\", \"service\": \"db003\", ",
        "\"description\": \"disk died\", \"onset\": 100, \"detected\": 160, ",
        "\"diagnosed\": 200, \"restored\": 900, \"actor\": \"agent\", ",
        "\"action\": \"restart\", \"escalated\": false, \"attempts\": []}, ",
        "{\"id\": 1, \"category\": \"Mid-crash\", \"service\": \"db003\", ",
        "\"description\": \"client killed mid-run\", \"onset\": 2000, ",
        "\"detected\": 2050, \"diagnosed\": null, \"restored\": 2400, ",
        "\"actor\": \"agent\", \"action\": \"resync\", \"escalated\": false, ",
        "\"attempts\": []}, ",
        "{\"id\": 2, \"category\": \"Software\", \"service\": \"web001\", ",
        "\"description\": \"daemon hang\", \"onset\": 5000, \"detected\": 5100, ",
        "\"diagnosed\": 5200, \"restored\": 9000, \"actor\": \"human\", ",
        "\"action\": \"manual fix\", \"escalated\": true, \"attempts\": []}",
        "]},\n\"trace\": {\"events\": []}\n}\n"
    );
    std::fs::write(evidence.join("old_run.json"), export).unwrap();
    let slo = concat!(
        "{\n\"report\": \"slo\",\n\"seed\": 7,\n\"mode\": \"Test\",\n",
        "\"target\": 0.999,\n\"services\": [",
        "{\"service\": \"db003\", \"incidents\": 2, \"downtime_secs\": 1200, ",
        "\"availability\": 99.2, \"mttr_secs\": 545.0, \"burn_alerts\": 0}",
        "]\n}\n"
    );
    std::fs::write(evidence.join("old_run_slo.json"), slo).unwrap();

    // Everything except the ingest report, whose parsed/reused cost
    // counters legitimately differ between incremental and full paths.
    let snapshot = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        files.sort();
        files
            .into_iter()
            .filter(|p| p.file_name().is_none_or(|n| n != "ingest_report.json"))
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).unwrap(),
                )
            })
            .collect()
    };

    let store_dir = trial_dir.join("store");
    Store::build(&evidence, &store_dir).unwrap();
    let first = snapshot(&store_dir);
    // Re-ingest twice more: once incrementally, once from scratch.
    Store::build_incremental(&evidence, &store_dir).unwrap();
    assert_eq!(snapshot(&store_dir), first, "incremental re-ingest drifted");
    Store::build(&evidence, &store_dir).unwrap();
    assert_eq!(snapshot(&store_dir), first, "full re-ingest drifted");

    // The backfilled classification answers queries, identically from
    // the index and the linear scan over the untouched old files.
    let store = Store::open(&store_dir).unwrap();
    let expect = [
        ("transient-abort", 1usize), // auto-closed, not escalated
        ("client-workload", 1),      // Mid-crash category
        ("service-fault", 1),        // escalated to a human
    ];
    for (class, count) in expect {
        let q = Query {
            class: Some(class.to_string()),
            ..Query::default()
        };
        let (indexed, stats) = store.query(&q).unwrap();
        let (scanned, _, _) = scan_query(&evidence, &q).unwrap();
        assert_eq!(indexed, scanned, "backends diverged for class {class}");
        assert_eq!(indexed.len(), count, "wrong count for class {class}");
        assert_eq!(stats.source_files_read, 0);
    }
    let q = Query {
        actionable: Some(false),
        ..Query::default()
    };
    let (indexed, _) = store.query(&q).unwrap();
    assert_eq!(indexed.len(), 2, "two of the three classes do not burn");

    // The inherited document-level target reached the SLO row.
    let q = Query {
        kind: Some(Kind::Slo),
        ..Query::default()
    };
    let (rows, _) = store.query(&q).unwrap();
    assert_eq!(rows.len(), 1);
    if let intelliqos_evdb::Rec::Slo(row) = &rows[0] {
        assert_eq!(row.target.to_bits(), 0.999f64.to_bits());
    } else {
        panic!("expected an SLO row");
    }

    let _ = std::fs::remove_dir_all(&trial_dir);
}
