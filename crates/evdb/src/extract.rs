//! Shared evidence extraction: one walk that turns an evidence
//! directory into typed records.
//!
//! Both the store's ingest and the reference linear scan call this —
//! which is the first half of the byte-identity guarantee: the two
//! backends cannot disagree about what a file *means* because they
//! share the code that reads it.
//!
//! Recognised sources, walked in sorted order:
//!
//! * `*.json` run exports (a `ledger` member) → incidents + trace
//!   events, run label = file stem;
//! * `*_slo.json` SLO reports (`"report": "slo"`) → per-service SLO
//!   samples, run label = stem minus `_slo`;
//! * spill directories (a `manifest.json` tagged `trace_spill`) →
//!   trace events from every chunk, run label = directory path
//!   relative to the evidence root.
//!
//! Anything else (ontology reports, stray files) is left alone.
//! Truncated or malformed inputs degrade to warnings, never errors:
//! evidence from a crashed run must stay triagable.

use std::path::{Path, PathBuf};

use intelliqos_core::downtime::{classify_failure, FailureClass};
use intelliqos_core::jsonv::{self, JsonValue};
use intelliqos_simkern::trace::read_spill_chunks;

use crate::model::{AttemptRec, IncidentRec, Rec, SloRec, TraceRec};

/// One file the extraction ingested, with its size — the provenance
/// list the store manifest records and the scan charges its cost to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Path relative to the evidence root, `/`-separated.
    pub rel: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Run label the file's records carry — the key incremental
    /// ingest reuses previous segments under.
    pub run: String,
}

/// Everything an evidence walk produced.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    /// Every typed record, in walk order (callers sort).
    pub records: Vec<Rec>,
    /// Every ingested file.
    pub sources: Vec<SourceFile>,
    /// Non-fatal problems (truncated chunks, malformed rows).
    pub warnings: Vec<String>,
}

/// Walk `root` and extract every recognised evidence record.
pub fn extract_dir(root: &Path) -> Result<Extraction, String> {
    let mut ex = Extraction::default();
    walk(root, root, &mut ex)?;
    Ok(ex)
}

/// What an incremental walk produced: the same source list a full walk
/// would record, fresh records for changed or new evidence only, and
/// the run labels whose records the caller must copy forward from the
/// previous store.
#[derive(Debug, Clone, Default)]
pub struct IncrementalExtraction {
    /// Fresh records plus the complete provenance list, in walk order.
    pub extraction: Extraction,
    /// Runs whose evidence was untouched — their records come from the
    /// previous store's segments, not from re-parsing. Sorted, deduped.
    pub reused_runs: Vec<String>,
    /// Evidence files actually re-parsed.
    pub sources_parsed: u64,
    /// Evidence files skipped because path and byte size matched the
    /// previous manifest.
    pub sources_reused: u64,
}

/// One ingestion unit of the walk: the granularity at which evidence
/// is parsed, and therefore at which re-parsing can be skipped.
enum Unit {
    /// A spill directory — its manifest plus every chunk parse as one.
    Spill {
        dir: PathBuf,
        files: Vec<SourceFile>,
    },
    /// One candidate JSON document (run export, SLO report, or a
    /// bystander the extractor will ignore after parsing).
    Json {
        path: PathBuf,
        rel: String,
        bytes: u64,
    },
}

/// Mirror [`walk`]'s traversal exactly, but collect units instead of
/// parsing — the cheap planning pass of an incremental ingest.
fn collect_units(root: &Path, dir: &Path, units: &mut Vec<Unit>) -> Result<(), String> {
    if is_spill_dir(dir) {
        let run = rel_path(root, dir);
        let mut files = Vec::new();
        let stat = |path: &Path| SourceFile {
            rel: rel_path(root, path),
            bytes: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            run: run.clone(),
        };
        files.push(stat(&dir.join("manifest.json")));
        for chunk in spill_chunk_paths(dir) {
            files.push(stat(&chunk));
        }
        units.push(Unit::Spill {
            dir: dir.to_path_buf(),
            files,
        });
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_units(root, &path, units)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("json") {
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            units.push(Unit::Json {
                rel: rel_path(root, &path),
                bytes,
                path,
            });
        }
    }
    Ok(())
}

/// Walk `root` against the previous manifest's source list, re-parsing
/// only evidence that changed. A run's records are reused only when
/// *every* file it fed the previous ingest is still present with the
/// same byte size and nothing that fed it was removed — otherwise the
/// whole run re-parses, because extraction granularity is the unit
/// (a spill directory, a run export, an SLO report), not the record.
pub fn extract_dir_incremental(
    root: &Path,
    old_sources: &[SourceFile],
) -> Result<IncrementalExtraction, String> {
    use std::collections::{BTreeMap, BTreeSet};

    let mut units = Vec::new();
    collect_units(root, root, &mut units)?;

    let old_by_rel: BTreeMap<&str, &SourceFile> =
        old_sources.iter().map(|s| (s.rel.as_str(), s)).collect();
    let mut old_run_counts: BTreeMap<String, u64> = BTreeMap::new();
    for s in old_sources {
        *old_run_counts.entry(s.run.clone()).or_default() += 1;
    }

    // A run stays reusable only while every unit that touches it is
    // byte-identical to the previous ingest and every previous source
    // of the run is claimed by some unchanged unit.
    let mut claimed: BTreeMap<String, u64> = BTreeMap::new();
    let mut disqualified: BTreeSet<String> = BTreeSet::new();
    let unchanged = |f: &SourceFile| {
        old_by_rel
            .get(f.rel.as_str())
            .is_some_and(|old| old.bytes == f.bytes && old.run == f.run)
    };
    for unit in &units {
        match unit {
            Unit::Spill { files, .. } => {
                let run = files[0].run.clone();
                if files.iter().all(unchanged) {
                    *claimed.entry(run).or_default() += files.len() as u64;
                } else {
                    disqualified.insert(run);
                }
            }
            Unit::Json { rel, bytes, .. } => {
                if let Some(old) = old_by_rel.get(rel.as_str()) {
                    if old.bytes == *bytes {
                        *claimed.entry(old.run.clone()).or_default() += 1;
                    } else {
                        disqualified.insert(old.run.clone());
                    }
                }
                // A file the previous ingest never recorded parses
                // fresh below; it cannot disqualify anything here.
            }
        }
    }
    let skippable = |run: &str| {
        !run.is_empty()
            && !disqualified.contains(run)
            && old_run_counts.get(run).copied().unwrap_or(0) > 0
            && claimed.get(run).copied().unwrap_or(0) == old_run_counts[run]
    };

    let mut out = IncrementalExtraction::default();
    let ex = &mut out.extraction;
    for unit in &units {
        match unit {
            Unit::Spill { dir, files } => {
                let run = files[0].run.clone();
                if skippable(&run) {
                    ex.sources.extend(files.iter().cloned());
                    out.sources_reused += files.len() as u64;
                    out.reused_runs.push(run);
                } else {
                    let before = ex.sources.len();
                    extract_spill(root, dir, ex);
                    out.sources_parsed += (ex.sources.len() - before) as u64;
                }
            }
            Unit::Json { path, rel, bytes } => {
                let old = old_by_rel.get(rel.as_str());
                let reusable = old.is_some_and(|o| o.bytes == *bytes && skippable(&o.run));
                if let (Some(old), true) = (old, reusable) {
                    ex.sources.push(SourceFile {
                        rel: rel.clone(),
                        bytes: *bytes,
                        run: old.run.clone(),
                    });
                    out.sources_reused += 1;
                    out.reused_runs.push(old.run.clone());
                } else {
                    let before = ex.sources.len();
                    extract_json(root, path, ex);
                    out.sources_parsed += (ex.sources.len() - before) as u64;
                }
            }
        }
    }
    out.reused_runs.sort();
    out.reused_runs.dedup();

    // A freshly parsed file may label its records with a run the plan
    // chose to reuse (a new file whose stem collides with an existing
    // run). Merging would duplicate or misorder records, so report the
    // collision and let the caller fall back to a full walk.
    if ex.records.iter().any(|r| {
        out.reused_runs
            .binary_search_by(|p| p.as_str().cmp(r.run()))
            .is_ok()
    }) {
        return Err("incremental plan collided with a reused run".to_string());
    }
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn push_source(root: &Path, path: &Path, run: &str, ex: &mut Extraction) {
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    ex.sources.push(SourceFile {
        rel: rel_path(root, path),
        bytes,
        run: run.to_string(),
    });
}

fn is_spill_dir(dir: &Path) -> bool {
    let manifest = dir.join("manifest.json");
    let Ok(text) = std::fs::read_to_string(&manifest) else {
        return false;
    };
    jsonv::parse(&text)
        .ok()
        .and_then(|v| v.get("report").and_then(|r| r.as_str().map(String::from)))
        .as_deref()
        == Some("trace_spill")
}

fn walk(root: &Path, dir: &Path, ex: &mut Extraction) -> Result<(), String> {
    if is_spill_dir(dir) {
        extract_spill(root, dir, ex);
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk(root, &path, ex)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("json") {
            extract_json(root, &path, ex);
        }
    }
    Ok(())
}

/// The chunk files of a spill directory, sorted — the order both the
/// reader and the provenance list use.
fn spill_chunk_paths(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut chunks: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("chunk-") && n.ends_with(".jsonl"))
        })
        .collect();
    chunks.sort();
    chunks
}

fn extract_spill(root: &Path, dir: &Path, ex: &mut Extraction) {
    let run = rel_path(root, dir);
    push_source(root, &dir.join("manifest.json"), &run, ex);
    match read_spill_chunks(dir) {
        Ok((records, warnings)) => {
            // Charge every chunk file as a source, in the read order.
            for chunk in spill_chunk_paths(dir) {
                push_source(root, &chunk, &run, ex);
            }
            ex.warnings.extend(warnings);
            ex.records.extend(records.into_iter().map(|r| {
                Rec::Trace(TraceRec {
                    run: run.clone(),
                    seq: r.seq,
                    at: r.at.as_secs(),
                    subsystem: r.subsystem.tag().to_string(),
                    code: r.code,
                    corr: r.corr,
                    detail: r.detail,
                })
            }));
        }
        Err(e) => ex.warnings.push(format!("{}: {e}", dir.display())),
    }
}

fn extract_json(root: &Path, path: &Path, ex: &mut Extraction) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            ex.warnings
                .push(format!("{}: unreadable: {e}", path.display()));
            return;
        }
    };
    let doc = match jsonv::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            ex.warnings
                .push(format!("{}: bad JSON: {e}", path.display()));
            return;
        }
    };
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("")
        .to_string();
    if doc.get("report").and_then(|v| v.as_str()) == Some("slo") {
        let run = stem.strip_suffix("_slo").unwrap_or(&stem).to_string();
        push_source(root, path, &run, ex);
        extract_slo(&doc, &run, path, ex);
    } else if doc.get("ledger").is_some() {
        push_source(root, path, &stem, ex);
        extract_run_export(&doc, &stem, path, ex);
    }
}

fn extract_slo(doc: &JsonValue, run: &str, path: &Path, ex: &mut Extraction) {
    let Some(services) = doc.get("services").and_then(|v| v.as_arr()) else {
        ex.warnings
            .push(format!("{}: slo report without services", path.display()));
        return;
    };
    // Pre-taxonomy reports carry one document-level target and no
    // per-row targets; the backfill lets their rows inherit it, so a
    // re-ingest classifies old evidence without mutating the files.
    let doc_target = doc.get("target").and_then(|v| v.as_f64()).unwrap_or(0.9999);
    for (i, s) in services.iter().enumerate() {
        let Some(service) = s.get("service").and_then(|v| v.as_str()) else {
            ex.warnings
                .push(format!("{}: services[{i}] without a name", path.display()));
            continue;
        };
        ex.records.push(Rec::Slo(SloRec {
            run: run.to_string(),
            service: service.to_string(),
            incidents: s.get("incidents").and_then(|v| v.as_u64()).unwrap_or(0),
            downtime_secs: s.get("downtime_secs").and_then(|v| v.as_u64()).unwrap_or(0),
            availability: s
                .get("availability")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0),
            mttr_secs: s.get("mttr_secs").and_then(|v| v.as_f64()).unwrap_or(0.0),
            burn_alerts: s.get("burn_alerts").and_then(|v| v.as_u64()).unwrap_or(0),
            target: s
                .get("target")
                .and_then(|v| v.as_f64())
                .unwrap_or(doc_target),
        }));
    }
}

fn extract_run_export(doc: &JsonValue, run: &str, path: &Path, ex: &mut Extraction) {
    if let Some(incidents) = doc
        .get("ledger")
        .and_then(|l| l.get("incidents"))
        .and_then(|v| v.as_arr())
    {
        for (i, inc) in incidents.iter().enumerate() {
            match extract_incident(inc, run) {
                Ok(rec) => ex.records.push(Rec::Incident(rec)),
                Err(e) => ex
                    .warnings
                    .push(format!("{}: incidents[{i}]: {e}", path.display())),
            }
        }
    }
    if let Some(events) = doc
        .get("trace")
        .and_then(|t| t.get("events"))
        .and_then(|v| v.as_arr())
    {
        for (i, ev) in events.iter().enumerate() {
            match extract_trace_event(ev, run) {
                Ok(rec) => ex.records.push(Rec::Trace(rec)),
                Err(e) => ex
                    .warnings
                    .push(format!("{}: events[{i}]: {e}", path.display())),
            }
        }
    }
}

fn extract_incident(inc: &JsonValue, run: &str) -> Result<IncidentRec, String> {
    let id = inc
        .get("id")
        .and_then(|v| v.as_u64())
        .ok_or("incident without id")?;
    let mut attempts = Vec::new();
    if let Some(arr) = inc.get("attempts").and_then(|v| v.as_arr()) {
        for a in arr {
            attempts.push(AttemptRec {
                at: a.get("at").and_then(|v| v.as_u64()).unwrap_or(0),
                actor: a
                    .get("actor")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
                action: a
                    .get("action")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string(),
                resolved: a.get("resolved").and_then(|v| v.as_bool()).unwrap_or(false),
            });
        }
    }
    let opt_str =
        |key: &str| -> Option<String> { inc.get(key).and_then(|v| v.as_str()).map(String::from) };
    let category = opt_str("category").unwrap_or_default();
    let actor = opt_str("actor");
    let escalated = inc
        .get("escalated")
        .and_then(|v| v.as_bool())
        .unwrap_or(false);
    // Taxonomy backfill: a post-taxonomy export carries the class; a
    // pre-taxonomy export (or an unknown label) re-derives it with the
    // ledger's own classifier over the exported fields. Deterministic
    // either way, so re-ingesting old evidence is idempotent and the
    // old files never need rewriting.
    let failure_class = opt_str("failure_class")
        .as_deref()
        .and_then(FailureClass::parse)
        .unwrap_or_else(|| classify_failure(&category, actor.as_deref(), escalated));
    let is_actionable = inc
        .get("is_actionable")
        .and_then(|v| v.as_bool())
        .unwrap_or_else(|| failure_class.is_actionable());
    Ok(IncidentRec {
        run: run.to_string(),
        id,
        category,
        service: opt_str("service").unwrap_or_default(),
        description: opt_str("description").unwrap_or_default(),
        onset: inc.get("onset").and_then(|v| v.as_u64()).unwrap_or(0),
        detected: inc.get("detected").and_then(|v| v.as_u64()),
        diagnosed: inc.get("diagnosed").and_then(|v| v.as_u64()),
        restored: inc.get("restored").and_then(|v| v.as_u64()),
        actor,
        action: opt_str("action"),
        escalated,
        failure_class: failure_class.label().to_string(),
        is_actionable,
        attempts,
    })
}

fn extract_trace_event(ev: &JsonValue, run: &str) -> Result<TraceRec, String> {
    match ev {
        // Current exports embed the spill-JSONL object per event.
        JsonValue::Obj(_) => Ok(TraceRec {
            run: run.to_string(),
            seq: ev
                .get("seq")
                .and_then(|v| v.as_u64())
                .ok_or("event without seq")?,
            at: ev
                .get("at")
                .and_then(|v| v.as_u64())
                .ok_or("event without at")?,
            subsystem: ev
                .get("subsystem")
                .and_then(|v| v.as_str())
                .ok_or("event without subsystem")?
                .to_string(),
            code: ev
                .get("code")
                .and_then(|v| v.as_str())
                .ok_or("event without code")?
                .to_string(),
            corr: ev.get("corr").and_then(|v| v.as_u64()),
            detail: ev
                .get("detail")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
        }),
        // Older exports rendered the pipe line; accept it (no corr).
        JsonValue::Str(line) => parse_pipe_event(line, run),
        _ => Err("event is neither object nor string".to_string()),
    }
}

/// Parse the legacy `seq|at|subsystem|code|detail` render. Only the
/// detail column is escaped (`\p`, `\\`, `\n`, `\r`), so a plain split
/// yields exactly five columns.
fn parse_pipe_event(line: &str, run: &str) -> Result<TraceRec, String> {
    let f: Vec<&str> = line.split('|').collect();
    if f.len() != 5 {
        return Err(format!("pipe event has {} columns, want 5", f.len()));
    }
    let mut detail = String::with_capacity(f[4].len());
    let mut chars = f[4].chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            detail.push(ch);
            continue;
        }
        match chars.next() {
            Some('p') => detail.push('|'),
            Some('\\') => detail.push('\\'),
            Some('n') => detail.push('\n'),
            Some('r') => detail.push('\r'),
            Some(other) => return Err(format!("bad detail escape \\{other}")),
            None => return Err("dangling detail escape".to_string()),
        }
    }
    Ok(TraceRec {
        run: run.to_string(),
        seq: f[0].parse().map_err(|e| format!("bad seq: {e}"))?,
        at: f[1].parse().map_err(|e| format!("bad at: {e}"))?,
        subsystem: f[2].to_string(),
        code: f[3].to_string(),
        corr: None,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_event_unescapes_detail() {
        let rec = parse_pipe_event("3|60|admin|dgspl|a\\pb\\\\c\\nd\\re", "r").unwrap();
        assert_eq!(rec.detail, "a|b\\c\nd\re");
        assert_eq!(rec.subsystem, "admin");
        assert_eq!(rec.corr, None);
    }

    #[test]
    fn object_event_carries_corr() {
        let doc =
            jsonv::parse("{\"seq\":1,\"at\":2,\"subsystem\":\"agent\",\"code\":\"detect\",\"corr\":4,\"detail\":\"d\"}")
                .unwrap();
        let rec = extract_trace_event(&doc, "r").unwrap();
        assert_eq!(rec.corr, Some(4));
        assert_eq!(rec.code, "detect");
    }
}
