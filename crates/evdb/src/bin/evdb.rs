//! `evdb` — ingest, query, and diff the evidence store.
//!
//! ```text
//! evdb ingest [EVIDENCE_DIR] [--store DIR] [--full]
//! evdb query  [--store DIR | --scan EVIDENCE_DIR] [--kind inc|trc|slo]
//!             [--run R] [--service S] [--category C] [--subsystem S]
//!             [--class C] [--actionable true|false]
//!             [--corr N] [--window T0..T1] [--stats]
//! evdb diff RUN_A RUN_B [--store DIR]
//! ```
//!
//! `ingest` deterministically rebuilds the store from the evidence
//! directory — incrementally by default (runs whose evidence files all
//! match the previous manifest by path and byte size are copied
//! forward instead of re-parsed; the store bytes come out identical
//! either way), or from scratch with `--full`. `query` answers from
//! the index by default; `--scan` answers from the linear reference
//! scan instead — the two print byte-identical lines for the same
//! filter, which CI checks. `--category` takes an incident category
//! label or a registered trace event code, `--subsystem` a registered
//! subsystem tag, and `--class` one of the three failure-class labels
//! (`service-fault`, `client-workload`, `transient-abort`); anything
//! outside that closed world is rejected with a suggestion rather than
//! answered emptily. `--actionable` filters incidents on whether they
//! count against the error budget. `--stats` writes
//! `query_report.json` (indexed mode) with the `source_files_read`
//! counter that proves the index never re-opened raw evidence. `diff`
//! contrasts two runs side by side.

use std::path::PathBuf;
use std::process::ExitCode;

use intelliqos_evdb::{diff_runs, scan_query, Kind, Query, Store};

const DEFAULT_EVIDENCE: &str = "results/evidence";
const DEFAULT_STORE: &str = "results/evdb";

fn usage() -> ExitCode {
    eprintln!(
        "usage: evdb ingest [EVIDENCE_DIR] [--store DIR] [--full]\n       \
         evdb query [--store DIR | --scan EVIDENCE_DIR] [--kind inc|trc|slo] [--run R]\n              \
         [--service S] [--category C] [--subsystem S] [--class C] [--actionable true|false]\n              \
         [--corr N] [--window T0..T1] [--stats]\n       \
         evdb diff RUN_A RUN_B [--store DIR]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("evdb: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => usage(),
    }
}

fn cmd_ingest(args: &[String]) -> ExitCode {
    let mut evidence = PathBuf::from(DEFAULT_EVIDENCE);
    let mut store = PathBuf::from(DEFAULT_STORE);
    let mut full = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => match it.next() {
                Some(dir) => store = PathBuf::from(dir),
                None => return fail("--store needs a directory"),
            },
            "--full" => full = true,
            flag if flag.starts_with("--") => return usage(),
            dir => evidence = PathBuf::from(dir),
        }
    }
    let built = if full {
        Store::build(&evidence, &store)
    } else {
        Store::build_incremental(&evidence, &store)
    };
    match built {
        Ok(report) => {
            for w in &report.warnings {
                eprintln!("evdb: warning: {w}");
            }
            println!(
                "evdb: ingested {} records from {} source file(s) into {} \
                 ({} parsed, {} reused, {} segment(s), {} index file(s), {} warning(s))",
                report.records,
                report.sources.len(),
                store.display(),
                report.sources_parsed,
                report.sources_reused,
                report.segments,
                report.index_files,
                report.warnings.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_query(args: &[String]) -> ExitCode {
    let mut store_dir = PathBuf::from(DEFAULT_STORE);
    let mut scan_dir: Option<PathBuf> = None;
    let mut stats_flag = false;
    let mut q = Query::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next()
                .cloned()
                .ok_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--store" => match value("--store") {
                Ok(v) => store_dir = PathBuf::from(v),
                Err(code) => return code,
            },
            "--scan" => match value("--scan") {
                Ok(v) => scan_dir = Some(PathBuf::from(v)),
                Err(code) => return code,
            },
            "--kind" => match value("--kind") {
                Ok(v) => match Kind::from_tag(&v) {
                    Some(k) => q.kind = Some(k),
                    None => return fail(&format!("unknown kind {v:?} (inc|trc|slo)")),
                },
                Err(code) => return code,
            },
            "--run" => match value("--run") {
                Ok(v) => q.run = Some(v),
                Err(code) => return code,
            },
            "--service" => match value("--service") {
                Ok(v) => q.service = Some(v),
                Err(code) => return code,
            },
            "--category" => match value("--category") {
                Ok(v) => q.category = Some(v),
                Err(code) => return code,
            },
            "--subsystem" => match value("--subsystem") {
                Ok(v) => q.subsystem = Some(v),
                Err(code) => return code,
            },
            "--class" => match value("--class") {
                Ok(v) => q.class = Some(v),
                Err(code) => return code,
            },
            "--actionable" => match value("--actionable") {
                Ok(v) => match v.as_str() {
                    "true" | "1" => q.actionable = Some(true),
                    "false" | "0" => q.actionable = Some(false),
                    other => return fail(&format!("bad --actionable {other:?} (true|false)")),
                },
                Err(code) => return code,
            },
            "--corr" => match value("--corr") {
                Ok(v) => match v.parse() {
                    Ok(n) => q.corr = Some(n),
                    Err(e) => return fail(&format!("bad --corr: {e}")),
                },
                Err(code) => return code,
            },
            "--window" => match value("--window") {
                Ok(v) => match Query::parse_window(&v) {
                    Ok(w) => q.window = Some(w),
                    Err(e) => return fail(&e),
                },
                Err(code) => return code,
            },
            "--stats" => stats_flag = true,
            _ => return usage(),
        }
    }

    // Operator-facing closed-world check: a typo'd category or
    // subsystem is an error here, never an empty answer.
    if let Err(e) = q.validate() {
        return fail(&e);
    }

    if let Some(dir) = scan_dir {
        return match scan_query(&dir, &q) {
            Ok((recs, stats, warnings)) => {
                for w in &warnings {
                    eprintln!("evdb: warning: {w}");
                }
                for rec in &recs {
                    println!("{}", rec.render_line());
                }
                if stats_flag {
                    eprintln!(
                        "evdb: scan: {} source file(s), {} byte(s), {} row(s) matched",
                        stats.source_files_read, stats.bytes_read, stats.rows_matched
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        };
    }

    let store = match Store::open(&store_dir) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    match store.query(&q) {
        Ok((recs, stats)) => {
            for rec in &recs {
                println!("{}", rec.render_line());
            }
            if stats_flag {
                eprintln!(
                    "evdb: index: {} index file(s), {} segment(s), {} row(s) loaded, \
                     {} matched, {} byte(s), {} source file(s) re-read",
                    stats.index_files_read,
                    stats.segments_read,
                    stats.rows_loaded,
                    stats.rows_matched,
                    stats.bytes_read,
                    stats.source_files_read
                );
                if let Err(e) = store.write_query_report(&q, &stats) {
                    return fail(&e);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut store_dir = PathBuf::from(DEFAULT_STORE);
    let mut runs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => match it.next() {
                Some(dir) => store_dir = PathBuf::from(dir),
                None => return fail("--store needs a directory"),
            },
            flag if flag.starts_with("--") => return usage(),
            run => runs.push(run.to_string()),
        }
    }
    let [run_a, run_b] = runs.as_slice() else {
        return usage();
    };
    let store = match Store::open(&store_dir) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let fetch = |run: &str| {
        store.query(&Query {
            run: Some(run.to_string()),
            ..Query::default()
        })
    };
    let a = match fetch(run_a) {
        Ok((recs, _)) => recs,
        Err(e) => return fail(&e),
    };
    let b = match fetch(run_b) {
        Ok((recs, _)) => recs,
        Err(e) => return fail(&e),
    };
    if a.is_empty() && b.is_empty() {
        let known = store.runs().join(", ");
        return fail(&format!("no records for either run; known runs: {known}"));
    }
    print!("{}", diff_runs(&a, run_a, &b, run_b));
    ExitCode::SUCCESS
}
