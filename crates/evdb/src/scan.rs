//! The reference backend: a linear scan over the raw evidence
//! directory.
//!
//! This is the semantics oracle. It extracts every record through the
//! same [`crate::extract`] walk the store's ingest uses, applies the
//! same [`crate::query::Query::matches`] predicate, and sorts by the
//! same [`crate::model::Rec::sort_key`] — so an indexed answer that
//! differs from the scan answer is a store bug by definition, and the
//! equivalence property test holds the two to byte identity.

use std::path::Path;

use crate::extract::extract_dir;
use crate::model::Rec;
use crate::query::Query;

/// What the scan cost: the counters the indexed path is measured
/// against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Evidence files opened and parsed.
    pub source_files_read: u64,
    /// Total bytes of evidence read.
    pub bytes_read: u64,
    /// Records satisfying the query.
    pub rows_matched: u64,
}

/// Run `q` by scanning `evidence_dir` linearly. Returns the matching
/// records in canonical order, the cost, and any extraction warnings.
pub fn scan_query(
    evidence_dir: &Path,
    q: &Query,
) -> Result<(Vec<Rec>, ScanStats, Vec<String>), String> {
    let ex = extract_dir(evidence_dir)?;
    let mut stats = ScanStats {
        source_files_read: ex.sources.len() as u64,
        bytes_read: ex.sources.iter().map(|s| s.bytes).sum(),
        rows_matched: 0,
    };
    let mut out: Vec<Rec> = ex.records.into_iter().filter(|r| q.matches(r)).collect();
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    stats.rows_matched = out.len() as u64;
    Ok((out, stats, ex.warnings))
}
