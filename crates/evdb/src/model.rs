//! Typed evidence entities and the flat row codec they serialise to.
//!
//! Three entity kinds cover everything the evidence pipeline writes:
//! ledger **incidents**, **trace** events (from run exports and spill
//! chunks alike), and per-service **SLO** samples. Every entity carries
//! the label of the run that produced it, so cross-run queries and
//! paired-run diffs are first-class.
//!
//! On disk a record is one escaped pipe-delimited line. The escape set
//! extends the trace codec (`|` → `\p`, `\` → `\\`, newlines) with `,`
//! → `\c` and `;` → `\s` so nested lists (incident attempts) can use
//! `,` and `;` as structural separators. Floats are written with
//! Rust's shortest-round-trip `Display`, so parse-back is bit-exact and
//! a store rebuild is byte-stable.

/// The three entity kinds the store holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// A ledger incident (one fault's full lifecycle).
    Incident,
    /// One structured trace event.
    Trace,
    /// One per-service SLO sample row.
    Slo,
}

impl Kind {
    /// Every kind, in sort-rank order.
    pub const ALL: [Kind; 3] = [Kind::Incident, Kind::Trace, Kind::Slo];

    /// Short stable tag used in file names and CLI arguments.
    pub fn tag(self) -> &'static str {
        match self {
            Kind::Incident => "inc",
            Kind::Trace => "trc",
            Kind::Slo => "slo",
        }
    }

    /// Inverse of [`Kind::tag`].
    pub fn from_tag(tag: &str) -> Option<Kind> {
        Kind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    fn rank(self) -> u8 {
        match self {
            Kind::Incident => 0,
            Kind::Trace => 1,
            Kind::Slo => 2,
        }
    }
}

/// One repair attempt inside an incident record.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRec {
    /// When the attempt ran.
    pub at: u64,
    /// Who attempted (agent or operator name).
    pub actor: String,
    /// What was tried.
    pub action: String,
    /// Whether this attempt closed the incident.
    pub resolved: bool,
}

/// One ledger incident, as exported in a run document.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRec {
    /// Label of the run that produced it (evidence file stem).
    pub run: String,
    /// Ledger incident id; doubles as the trace correlation id.
    pub id: u64,
    /// Fault category.
    pub category: String,
    /// Service (or host / domain) the incident charges.
    pub service: String,
    /// Human description.
    pub description: String,
    /// Fault-injection instant, seconds.
    pub onset: u64,
    /// Detection instant, if reached.
    pub detected: Option<u64>,
    /// Diagnosis instant, if reached.
    pub diagnosed: Option<u64>,
    /// Restoration instant, if reached.
    pub restored: Option<u64>,
    /// Closing actor, if closed.
    pub actor: Option<String>,
    /// Closing action, if closed.
    pub action: Option<String>,
    /// Whether the incident escalated to a human.
    pub escalated: bool,
    /// Failure-class label (`service-fault`, `client-workload`,
    /// `transient-abort`). Pre-taxonomy exports gain it at extraction
    /// via the same classifier the ledger uses, so backfill is pure
    /// deterministic re-derivation.
    pub failure_class: String,
    /// Whether the incident counts against the error budget by default.
    pub is_actionable: bool,
    /// Every repair attempt, in time order.
    pub attempts: Vec<AttemptRec>,
}

/// One structured trace event (run export or spill chunk).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRec {
    /// Label of the producing run.
    pub run: String,
    /// Emission sequence number, unique within the run.
    pub seq: u64,
    /// Simulated time, seconds.
    pub at: u64,
    /// Emitting subsystem tag (`fault`, `agent`, ...).
    pub subsystem: String,
    /// Machine-stable event code.
    pub code: String,
    /// Correlated incident id, if any.
    pub corr: Option<u64>,
    /// Free-form detail.
    pub detail: String,
}

/// One per-service SLO sample from an `slo` report document.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRec {
    /// Label of the producing run.
    pub run: String,
    /// The accounting key.
    pub service: String,
    /// Closed incidents charged to the service.
    pub incidents: u64,
    /// Total downtime charged, seconds.
    pub downtime_secs: u64,
    /// `1 - downtime / horizon`.
    pub availability: f64,
    /// Mean time to repair, seconds.
    pub mttr_secs: f64,
    /// Fast-burn alerts fired.
    pub burn_alerts: u64,
    /// The availability target this service reports against. Old
    /// reports without a per-row target inherit the document-level
    /// target at extraction.
    pub target: f64,
}

/// Any stored evidence record.
#[derive(Debug, Clone, PartialEq)]
pub enum Rec {
    /// A ledger incident.
    Incident(IncidentRec),
    /// A trace event.
    Trace(TraceRec),
    /// An SLO sample.
    Slo(SloRec),
}

impl Rec {
    /// The record's kind.
    pub fn kind(&self) -> Kind {
        match self {
            Rec::Incident(_) => Kind::Incident,
            Rec::Trace(_) => Kind::Trace,
            Rec::Slo(_) => Kind::Slo,
        }
    }

    /// The producing run's label.
    pub fn run(&self) -> &str {
        match self {
            Rec::Incident(r) => &r.run,
            Rec::Trace(r) => &r.run,
            Rec::Slo(r) => &r.run,
        }
    }

    /// The total order every query result is returned in: kind rank,
    /// then run label, then the kind's natural key. Both the indexed
    /// store and the linear scan sort by this, which is half of the
    /// byte-identity guarantee (the other half is the shared
    /// extraction).
    pub fn sort_key(&self) -> (u8, &str, u64, &str) {
        match self {
            Rec::Incident(r) => (self.kind().rank(), &r.run, r.id, ""),
            Rec::Trace(r) => (self.kind().rank(), &r.run, r.seq, ""),
            Rec::Slo(r) => (self.kind().rank(), &r.run, 0, &r.service),
        }
    }

    /// One deterministic human line per record — the `evdb query`
    /// output format.
    pub fn render_line(&self) -> String {
        match self {
            Rec::Incident(r) => format!(
                "inc {} #{} {} {} onset={} restored={} escalated={} class={} actionable={} {}",
                r.run,
                r.id,
                r.category,
                r.service,
                r.onset,
                r.restored
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
                r.escalated,
                r.failure_class,
                r.is_actionable,
                r.description
            ),
            Rec::Trace(r) => format!(
                "trc {} seq={} at={} {} {} corr={} {}",
                r.run,
                r.seq,
                r.at,
                r.subsystem,
                r.code,
                r.corr.map_or_else(|| "-".to_string(), |v| v.to_string()),
                r.detail
            ),
            Rec::Slo(r) => format!(
                "slo {} {} incidents={} downtime={} availability={:.8} mttr={:.2} alerts={} \
                 target={:.6}",
                r.run,
                r.service,
                r.incidents,
                r.downtime_secs,
                r.availability,
                r.mttr_secs,
                r.burn_alerts,
                r.target
            ),
        }
    }
}

/// Escape one field for the flat row codec.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            ',' => out.push_str("\\c"),
            ';' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('c') => out.push(','),
            Some('s') => out.push(';'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape \\{other}")),
            None => return Err("dangling escape".to_string()),
        }
    }
    Ok(out)
}

fn opt_u64_field(v: Option<u64>) -> String {
    v.map_or_else(String::new, |n| n.to_string())
}

fn parse_opt_u64(field: &str) -> Result<Option<u64>, String> {
    if field.is_empty() {
        return Ok(None);
    }
    field
        .parse()
        .map(Some)
        .map_err(|e| format!("bad integer {field:?}: {e}"))
}

fn parse_u64(field: &str) -> Result<u64, String> {
    field
        .parse()
        .map_err(|e| format!("bad integer {field:?}: {e}"))
}

fn parse_f64(field: &str) -> Result<f64, String> {
    field
        .parse()
        .map_err(|e| format!("bad float {field:?}: {e}"))
}

fn opt_str_field(v: Option<&str>) -> String {
    // `=` marks presence so `Some("")` and `None` stay distinct.
    v.map_or_else(String::new, |s| format!("={}", escape(s)))
}

fn parse_opt_str(field: &str) -> Result<Option<String>, String> {
    match field.strip_prefix('=') {
        Some(rest) => unescape(rest).map(Some),
        None if field.is_empty() => Ok(None),
        None => Err(format!("optional string without '=' prefix: {field:?}")),
    }
}

fn parse_bool(field: &str) -> Result<bool, String> {
    match field {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(format!("bad bool {other:?}")),
    }
}

impl IncidentRec {
    /// Serialise to one segment row (run lives in the segment header).
    pub fn to_row(&self) -> String {
        let attempts = self
            .attempts
            .iter()
            .map(|a| {
                format!(
                    "{},{},{},{}",
                    a.at,
                    escape(&a.actor),
                    escape(&a.action),
                    u8::from(a.resolved)
                )
            })
            .collect::<Vec<_>>()
            .join(";");
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.id,
            escape(&self.category),
            escape(&self.service),
            escape(&self.description),
            self.onset,
            opt_u64_field(self.detected),
            opt_u64_field(self.diagnosed),
            opt_u64_field(self.restored),
            opt_str_field(self.actor.as_deref()),
            opt_str_field(self.action.as_deref()),
            u8::from(self.escalated),
            escape(&self.failure_class),
            u8::from(self.is_actionable),
            attempts
        )
    }

    /// Parse a segment row written by [`IncidentRec::to_row`].
    pub fn from_row(run: &str, row: &str) -> Result<IncidentRec, String> {
        let f: Vec<&str> = row.split('|').collect();
        if f.len() != 14 {
            return Err(format!("incident row has {} fields, want 14", f.len()));
        }
        let mut attempts = Vec::new();
        if !f[13].is_empty() {
            for part in f[13].split(';') {
                let a: Vec<&str> = part.split(',').collect();
                if a.len() != 4 {
                    return Err(format!("attempt has {} fields, want 4", a.len()));
                }
                attempts.push(AttemptRec {
                    at: parse_u64(a[0])?,
                    actor: unescape(a[1])?,
                    action: unescape(a[2])?,
                    resolved: parse_bool(a[3])?,
                });
            }
        }
        Ok(IncidentRec {
            run: run.to_string(),
            id: parse_u64(f[0])?,
            category: unescape(f[1])?,
            service: unescape(f[2])?,
            description: unescape(f[3])?,
            onset: parse_u64(f[4])?,
            detected: parse_opt_u64(f[5])?,
            diagnosed: parse_opt_u64(f[6])?,
            restored: parse_opt_u64(f[7])?,
            actor: parse_opt_str(f[8])?,
            action: parse_opt_str(f[9])?,
            escalated: parse_bool(f[10])?,
            failure_class: unescape(f[11])?,
            is_actionable: parse_bool(f[12])?,
            attempts,
        })
    }
}

impl TraceRec {
    /// Serialise to one segment row.
    pub fn to_row(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.seq,
            self.at,
            escape(&self.subsystem),
            escape(&self.code),
            opt_u64_field(self.corr),
            escape(&self.detail)
        )
    }

    /// Parse a segment row written by [`TraceRec::to_row`].
    pub fn from_row(run: &str, row: &str) -> Result<TraceRec, String> {
        let f: Vec<&str> = row.split('|').collect();
        if f.len() != 6 {
            return Err(format!("trace row has {} fields, want 6", f.len()));
        }
        Ok(TraceRec {
            run: run.to_string(),
            seq: parse_u64(f[0])?,
            at: parse_u64(f[1])?,
            subsystem: unescape(f[2])?,
            code: unescape(f[3])?,
            corr: parse_opt_u64(f[4])?,
            detail: unescape(f[5])?,
        })
    }
}

impl SloRec {
    /// Serialise to one segment row. Floats use shortest-round-trip
    /// `Display`, so the parse-back is bit-exact.
    pub fn to_row(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}",
            escape(&self.service),
            self.incidents,
            self.downtime_secs,
            self.availability,
            self.mttr_secs,
            self.burn_alerts,
            self.target
        )
    }

    /// Parse a segment row written by [`SloRec::to_row`].
    pub fn from_row(run: &str, row: &str) -> Result<SloRec, String> {
        let f: Vec<&str> = row.split('|').collect();
        if f.len() != 7 {
            return Err(format!("slo row has {} fields, want 7", f.len()));
        }
        Ok(SloRec {
            run: run.to_string(),
            service: unescape(f[0])?,
            incidents: parse_u64(f[1])?,
            downtime_secs: parse_u64(f[2])?,
            availability: parse_f64(f[3])?,
            mttr_secs: parse_f64(f[4])?,
            burn_alerts: parse_u64(f[5])?,
            target: parse_f64(f[6])?,
        })
    }
}

impl Rec {
    /// Serialise to one segment row.
    pub fn to_row(&self) -> String {
        match self {
            Rec::Incident(r) => r.to_row(),
            Rec::Trace(r) => r.to_row(),
            Rec::Slo(r) => r.to_row(),
        }
    }

    /// Parse a segment row of the given kind.
    pub fn from_row(kind: Kind, run: &str, row: &str) -> Result<Rec, String> {
        match kind {
            Kind::Incident => IncidentRec::from_row(run, row).map(Rec::Incident),
            Kind::Trace => TraceRec::from_row(run, row).map(Rec::Trace),
            Kind::Slo => SloRec::from_row(run, row).map(Rec::Slo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_structural_characters() {
        let nasty = "a|b\\c,d;e\nf\rg plain";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
        assert!(!escape(nasty).contains('|'));
        assert!(!escape(nasty).contains(','));
        assert!(!escape(nasty).contains(';'));
    }

    #[test]
    fn incident_row_round_trips() {
        let rec = IncidentRec {
            run: "fig2_manual".to_string(),
            id: 7,
            category: "MidJobDbCrash".to_string(),
            service: "db|003".to_string(),
            description: "crash, then; hang".to_string(),
            onset: 120,
            detected: Some(130),
            diagnosed: None,
            restored: Some(900),
            actor: Some("db_agent".to_string()),
            action: None,
            escalated: false,
            failure_class: "client-workload".to_string(),
            is_actionable: false,
            attempts: vec![
                AttemptRec {
                    at: 140,
                    actor: "db_agent".to_string(),
                    action: "restart, forcibly".to_string(),
                    resolved: false,
                },
                AttemptRec {
                    at: 200,
                    actor: "operator".to_string(),
                    action: "failover;manual".to_string(),
                    resolved: true,
                },
            ],
        };
        let back = IncidentRec::from_row("fig2_manual", &rec.to_row()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn trace_and_slo_rows_round_trip() {
        let t = TraceRec {
            run: "r".to_string(),
            seq: 9,
            at: 77,
            subsystem: "agent".to_string(),
            code: "diagnose".to_string(),
            corr: Some(3),
            detail: "pipe|comma,semi;".to_string(),
        };
        assert_eq!(TraceRec::from_row("r", &t.to_row()).unwrap(), t);
        let s = SloRec {
            run: "r".to_string(),
            service: "web001".to_string(),
            incidents: 4,
            downtime_secs: 1234,
            availability: 1.0 - 1234.0 / 172_800.0,
            mttr_secs: 1234.0 / 4.0,
            burn_alerts: 1,
            target: 0.99999,
        };
        let back = SloRec::from_row("r", &s.to_row()).unwrap();
        assert_eq!(back.availability.to_bits(), s.availability.to_bits());
        assert_eq!(back.mttr_secs.to_bits(), s.mttr_secs.to_bits());
        assert_eq!(back.target.to_bits(), s.target.to_bits());
        assert_eq!(back, s);
    }

    #[test]
    fn none_and_empty_string_stay_distinct() {
        let mut rec = IncidentRec {
            run: "r".to_string(),
            id: 0,
            category: "c".to_string(),
            service: "s".to_string(),
            description: String::new(),
            onset: 0,
            detected: None,
            diagnosed: None,
            restored: None,
            actor: None,
            action: Some(String::new()),
            escalated: true,
            failure_class: "service-fault".to_string(),
            is_actionable: true,
            attempts: Vec::new(),
        };
        let back = IncidentRec::from_row("r", &rec.to_row()).unwrap();
        assert_eq!(back.actor, None);
        assert_eq!(back.action, Some(String::new()));
        rec.actor = Some(String::new());
        rec.action = None;
        let back = IncidentRec::from_row("r", &rec.to_row()).unwrap();
        assert_eq!(back.actor, Some(String::new()));
        assert_eq!(back.action, None);
    }

    #[test]
    fn sort_key_orders_kinds_then_runs_then_ids() {
        let inc = Rec::Incident(IncidentRec {
            run: "z".to_string(),
            id: 0,
            category: String::new(),
            service: String::new(),
            description: String::new(),
            onset: 0,
            detected: None,
            diagnosed: None,
            restored: None,
            actor: None,
            action: None,
            escalated: false,
            failure_class: "service-fault".to_string(),
            is_actionable: true,
            attempts: Vec::new(),
        });
        let trc = Rec::Trace(TraceRec {
            run: "a".to_string(),
            seq: 5,
            at: 0,
            subsystem: "kern".to_string(),
            code: "x".to_string(),
            corr: None,
            detail: String::new(),
        });
        assert!(
            inc.sort_key() < trc.sort_key(),
            "incidents sort before traces"
        );
    }
}
