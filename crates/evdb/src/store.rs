//! The indexed store: segments, secondary indexes, and the query
//! planner.
//!
//! ## On-disk layout (all flat ASCII, all deterministic)
//!
//! * `seg-%05d.evseg` — one segment per `(run, kind)` with records,
//!   written in canonical record order. First line is the header
//!   `evseg|1|{kind}|{run}|{rows}`; each following line is one escaped
//!   row ([`crate::model`]).
//! * `idx-{kind}-{field}.evx` — one secondary index per indexed field:
//!   sorted lines `key|seg:row seg:row ...`. The time index buckets
//!   instants into zero-padded hours so a window query is a
//!   lexicographic range over keys.
//! * `manifest.json` — segment/index catalogue plus the provenance of
//!   every ingested evidence file (path and byte size), so a validator
//!   can detect a stale store without rescanning chunk contents.
//! * `ingest_report.json` / `query_report.json` — machine-readable
//!   cost accounting; `query_report.json` carries the
//!   `source_files_read` counter that proves an indexed query never
//!   re-opened the raw evidence.
//!
//! Ingest is deterministic: same evidence in, same bytes out, and
//! re-ingesting is idempotent. [`Store::build`] re-parses everything;
//! [`Store::build_incremental`] skips re-extracting every run whose
//! evidence files all match the previous manifest by path and byte
//! size, copying their records forward from the old segments — the
//! resulting store bytes are identical either way (the equivalence
//! test holds them to it), only the `ingest_report.json` cost counters
//! differ.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use intelliqos_core::jsonv;

use crate::extract::{extract_dir, extract_dir_incremental, Extraction, SourceFile};
use crate::model::{escape, unescape, Kind, Rec};
use crate::query::Query;

/// Posting lists under construction: `(kind, field) → key → refs`.
type PostingMap = BTreeMap<(Kind, &'static str), BTreeMap<String, Vec<(u64, u64)>>>;

/// The store catalogue file.
pub const STORE_MANIFEST: &str = "manifest.json";
/// The ingest cost report.
pub const INGEST_REPORT: &str = "ingest_report.json";
/// The last query's cost report.
pub const QUERY_REPORT: &str = "query_report.json";

// Version 2 added the failure-taxonomy columns (incident
// `failure_class`/`is_actionable`, SLO per-row `target`). A version-1
// store fails to load under the new parser, which makes
// `build_incremental` fall back to a full rebuild — old evidence gains
// classification on re-ingest without any migration step.
const SEG_VERSION: u64 = 2;

fn index_fields(kind: Kind) -> &'static [&'static str] {
    match kind {
        Kind::Incident => &[
            "corr",
            "service",
            "category",
            "class",
            "actionable",
            "run",
            "time",
        ],
        Kind::Trace => &["corr", "category", "subsystem", "run", "time"],
        Kind::Slo => &["service", "run"],
    }
}

/// Hour bucket, zero-padded so string order is numeric order.
fn time_bucket(at: u64) -> String {
    format!("{:012}", at / 3600)
}

/// Index keys a record contributes under `field` (empty = unindexed,
/// e.g. an uncorrelated trace event under `corr`).
fn field_keys(rec: &Rec, field: &str) -> Option<String> {
    match (rec, field) {
        (Rec::Incident(r), "corr") => Some(r.id.to_string()),
        (Rec::Incident(r), "service") => Some(r.service.clone()),
        (Rec::Incident(r), "category") => Some(r.category.clone()),
        (Rec::Incident(r), "class") => Some(r.failure_class.clone()),
        (Rec::Incident(r), "actionable") => Some(u8::from(r.is_actionable).to_string()),
        (Rec::Incident(r), "time") => Some(time_bucket(r.onset)),
        (Rec::Trace(r), "corr") => r.corr.map(|c| c.to_string()),
        (Rec::Trace(r), "category") => Some(r.code.clone()),
        (Rec::Trace(r), "subsystem") => Some(r.subsystem.clone()),
        (Rec::Trace(r), "time") => Some(time_bucket(r.at)),
        (Rec::Slo(r), "service") => Some(r.service.clone()),
        (_, "run") => Some(rec.run().to_string()),
        _ => None,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One segment's catalogue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegMeta {
    /// Segment file name.
    pub file: String,
    /// Record kind the segment holds.
    pub kind: Kind,
    /// Run label of every record in it.
    pub run: String,
    /// Row count.
    pub rows: u64,
}

/// What one ingest produced.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Records ingested.
    pub records: u64,
    /// Segment files written.
    pub segments: u64,
    /// Index files written.
    pub index_files: u64,
    /// Evidence files read.
    pub sources: Vec<SourceFile>,
    /// Evidence files actually re-parsed this ingest.
    pub sources_parsed: u64,
    /// Evidence files skipped by the incremental path because path and
    /// byte size matched the previous manifest.
    pub sources_reused: u64,
    /// Extraction warnings (truncated chunks, malformed rows).
    pub warnings: Vec<String>,
}

/// Cost counters for one indexed query. `source_files_read` is the
/// acceptance counter: it stays zero because an indexed query touches
/// only `idx-*.evx` and `seg-*.evseg` files, never the raw evidence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index files opened.
    pub index_files_read: u64,
    /// Segment files opened.
    pub segments_read: u64,
    /// Rows materialised from segments.
    pub rows_loaded: u64,
    /// Rows satisfying the query.
    pub rows_matched: u64,
    /// Bytes read from store files.
    pub bytes_read: u64,
    /// Raw evidence files re-opened — always zero by construction.
    pub source_files_read: u64,
}

/// An opened store: the parsed manifest plus the directory handle.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    /// The evidence directory the store was built from, as given at
    /// ingest time.
    pub evidence_dir: String,
    /// Total records across all segments.
    pub records: u64,
    /// Segment catalogue, in file order.
    pub segments: Vec<SegMeta>,
    /// Index file names.
    pub indexes: Vec<String>,
    /// Provenance of every ingested evidence file.
    pub sources: Vec<SourceFile>,
}

impl Store {
    /// Build (or deterministically rebuild) the store under
    /// `store_dir` from the evidence under `evidence_dir`, re-parsing
    /// every evidence file.
    pub fn build(evidence_dir: &Path, store_dir: &Path) -> Result<IngestReport, String> {
        let ex = extract_dir(evidence_dir)?;
        let parsed = ex.sources.len() as u64;
        Self::finish_build(evidence_dir, store_dir, ex, parsed, 0)
    }

    /// Build the store, reusing the previous build's records for every
    /// run whose evidence files all match the old manifest by path and
    /// byte size. Falls back to a full [`Store::build`] when there is
    /// no usable previous store (or its manifest predates run-labelled
    /// sources), when it was built from a different evidence
    /// directory, or when the incremental plan cannot be merged safely.
    /// Either way the resulting store bytes are identical to a full
    /// rebuild, except for the cost counters in `ingest_report.json`.
    pub fn build_incremental(
        evidence_dir: &Path,
        store_dir: &Path,
    ) -> Result<IngestReport, String> {
        let old = match Store::open(store_dir) {
            Ok(s) => s,
            Err(_) => return Self::build(evidence_dir, store_dir),
        };
        if old.evidence_dir != evidence_dir.display().to_string()
            || old.sources.iter().any(|s| s.run.is_empty())
        {
            return Self::build(evidence_dir, store_dir);
        }
        let mut inc = match extract_dir_incremental(evidence_dir, &old.sources) {
            Ok(inc) => inc,
            Err(_) => return Self::build(evidence_dir, store_dir),
        };
        // Copy reused runs forward before the rebuild wipes the old
        // segments. Loading can still fail (a segment deleted from
        // under the manifest) — fall back to the full walk then, too.
        let mut stats = QueryStats::default();
        for (seg_id, seg) in old.segments.iter().enumerate() {
            if inc.reused_runs.binary_search(&seg.run).is_err() {
                continue;
            }
            match old.load_segment(seg_id as u64, None, &mut stats) {
                Ok(rows) => inc.extraction.records.extend(rows),
                Err(_) => return Self::build(evidence_dir, store_dir),
            }
        }
        let (parsed, reused) = (inc.sources_parsed, inc.sources_reused);
        Self::finish_build(evidence_dir, store_dir, inc.extraction, parsed, reused)
    }

    /// The shared back half of both build paths: sort, segment, index,
    /// and write the manifest and ingest report.
    fn finish_build(
        evidence_dir: &Path,
        store_dir: &Path,
        ex: Extraction,
        sources_parsed: u64,
        sources_reused: u64,
    ) -> Result<IngestReport, String> {
        let mut records = ex.records;
        records.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));

        prepare_store_dir(store_dir)?;

        // Segments: one per (kind, run) group, in canonical order.
        let mut segments: Vec<SegMeta> = Vec::new();
        let mut postings: PostingMap = BTreeMap::new();
        let mut i = 0;
        while i < records.len() {
            let kind = records[i].kind();
            let run = records[i].run().to_string();
            let mut j = i;
            while j < records.len() && records[j].kind() == kind && records[j].run() == run {
                j += 1;
            }
            let seg_id = segments.len() as u64;
            let file = format!("seg-{seg_id:05}.evseg");
            let mut body = format!(
                "evseg|{SEG_VERSION}|{}|{}|{}\n",
                kind.tag(),
                escape(&run),
                j - i
            );
            for (row, rec) in records[i..j].iter().enumerate() {
                body.push_str(&rec.to_row());
                body.push('\n');
                for field in index_fields(kind) {
                    if let Some(key) = field_keys(rec, field) {
                        postings
                            .entry((kind, field))
                            .or_default()
                            .entry(key)
                            .or_default()
                            .push((seg_id, row as u64));
                    }
                }
            }
            std::fs::write(store_dir.join(&file), body)
                .map_err(|e| format!("write {file}: {e}"))?;
            segments.push(SegMeta {
                file,
                kind,
                run,
                rows: (j - i) as u64,
            });
            i = j;
        }

        // Indexes.
        let mut index_files: Vec<String> = Vec::new();
        for ((kind, field), keys) in &postings {
            let file = format!("idx-{}-{field}.evx", kind.tag());
            let mut body = String::new();
            for (key, refs) in keys {
                body.push_str(&escape(key));
                body.push('|');
                for (k, (seg, row)) in refs.iter().enumerate() {
                    if k > 0 {
                        body.push(' ');
                    }
                    body.push_str(&format!("{seg}:{row}"));
                }
                body.push('\n');
            }
            std::fs::write(store_dir.join(&file), body)
                .map_err(|e| format!("write {file}: {e}"))?;
            index_files.push(file);
        }

        write_manifest(
            store_dir,
            evidence_dir,
            records.len() as u64,
            &segments,
            &index_files,
            &ex.sources,
        )?;

        let report = IngestReport {
            records: records.len() as u64,
            segments: segments.len() as u64,
            index_files: index_files.len() as u64,
            sources: ex.sources,
            sources_parsed,
            sources_reused,
            warnings: ex.warnings,
        };
        write_ingest_report(store_dir, &report)?;
        Ok(report)
    }

    /// Open an existing store by reading its manifest (and nothing
    /// else — segments and indexes load lazily per query).
    pub fn open(dir: &Path) -> Result<Store, String> {
        let path = dir.join(STORE_MANIFEST);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = jsonv::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if doc.get("report").and_then(|v| v.as_str()) != Some("evdb_manifest") {
            return Err(format!("{}: not an evdb manifest", path.display()));
        }
        let mut segments = Vec::new();
        for (i, s) in doc
            .get("segments")
            .and_then(|v| v.as_arr())
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            let file = s
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("segments[{i}]: no file"))?;
            let kind = s
                .get("kind")
                .and_then(|v| v.as_str())
                .and_then(Kind::from_tag)
                .ok_or_else(|| format!("segments[{i}]: bad kind"))?;
            let run = s
                .get("run")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("segments[{i}]: no run"))?;
            let rows = s
                .get("rows")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("segments[{i}]: no rows"))?;
            segments.push(SegMeta {
                file: file.to_string(),
                kind,
                run: run.to_string(),
                rows,
            });
        }
        let indexes = doc
            .get("indexes")
            .and_then(|v| v.as_arr())
            .unwrap_or_default()
            .iter()
            .filter_map(|v| v.as_str().map(String::from))
            .collect();
        let sources = doc
            .get("sources")
            .and_then(|v| v.as_arr())
            .unwrap_or_default()
            .iter()
            .filter_map(|s| {
                Some(SourceFile {
                    rel: s.get("path").and_then(|v| v.as_str())?.to_string(),
                    bytes: s.get("bytes").and_then(|v| v.as_u64())?,
                    // Absent in pre-incremental manifests; the empty
                    // label makes `build_incremental` rebuild in full.
                    run: s
                        .get("run")
                        .and_then(|v| v.as_str())
                        .unwrap_or("")
                        .to_string(),
                })
            })
            .collect();
        Ok(Store {
            dir: dir.to_path_buf(),
            evidence_dir: doc
                .get("evidence_dir")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            records: doc.get("records").and_then(|v| v.as_u64()).unwrap_or(0),
            segments,
            indexes,
            sources,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every distinct run label in the store, sorted.
    pub fn runs(&self) -> Vec<String> {
        let mut runs: Vec<String> = self.segments.iter().map(|s| s.run.clone()).collect();
        runs.sort();
        runs.dedup();
        runs
    }

    /// Run `q` through the indexes. Returns matching records in
    /// canonical order plus the cost counters.
    pub fn query(&self, q: &Query) -> Result<(Vec<Rec>, QueryStats), String> {
        let mut stats = QueryStats::default();
        let mut out: Vec<Rec> = Vec::new();
        for kind in Kind::ALL {
            if !q.admits_kind(kind) {
                continue;
            }
            match self.plan(kind, q) {
                Plan::Index { field, lo, hi } => {
                    let postings = self.load_index(kind, field, &mut stats)?;
                    let mut refs: Vec<(u64, u64)> = postings
                        .range(lo..=hi)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                    refs.sort_unstable();
                    refs.dedup();
                    self.load_refs(kind, &refs, q, &mut out, &mut stats)?;
                }
                Plan::Scan => {
                    for (seg_id, seg) in self.segments.iter().enumerate() {
                        if seg.kind != kind {
                            continue;
                        }
                        if q.run.as_deref().is_some_and(|r| seg.run != r) {
                            continue;
                        }
                        let rows = self.load_segment(seg_id as u64, None, &mut stats)?;
                        out.extend(rows.into_iter().filter(|r| q.matches(r)));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        stats.rows_matched = out.len() as u64;
        Ok((out, stats))
    }

    fn plan(&self, kind: Kind, q: &Query) -> Plan {
        let has = |f: &str| index_fields(kind).contains(&f);
        if let Some(c) = q.corr {
            if has("corr") {
                return Plan::exact("corr", c.to_string());
            }
        }
        if let Some(s) = &q.service {
            if has("service") {
                return Plan::exact("service", s.clone());
            }
        }
        if let Some(c) = &q.category {
            if has("category") {
                return Plan::exact("category", c.clone());
            }
        }
        if let Some(s) = &q.subsystem {
            if has("subsystem") {
                return Plan::exact("subsystem", s.clone());
            }
        }
        if let Some(c) = &q.class {
            if has("class") {
                return Plan::exact("class", c.clone());
            }
        }
        if let Some(a) = q.actionable {
            if has("actionable") {
                return Plan::exact("actionable", u8::from(a).to_string());
            }
        }
        if let Some(r) = &q.run {
            return Plan::exact("run", r.clone());
        }
        if let Some((t0, t1)) = q.window {
            if has("time") {
                return Plan::Index {
                    field: "time",
                    lo: time_bucket(t0),
                    hi: time_bucket(t1),
                };
            }
        }
        Plan::Scan
    }

    fn load_index(
        &self,
        kind: Kind,
        field: &str,
        stats: &mut QueryStats,
    ) -> Result<BTreeMap<String, Vec<(u64, u64)>>, String> {
        let name = format!("idx-{}-{field}.evx", kind.tag());
        let mut map = BTreeMap::new();
        if !self.indexes.iter().any(|i| i == &name) {
            return Ok(map); // no records of this kind were indexed
        }
        let path = self.dir.join(&name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        stats.index_files_read += 1;
        stats.bytes_read += text.len() as u64;
        for (lineno, line) in text.lines().enumerate() {
            let (key, refs) = line
                .split_once('|')
                .ok_or_else(|| format!("{name}:{}: no key separator", lineno + 1))?;
            let key = unescape(key).map_err(|e| format!("{name}:{}: {e}", lineno + 1))?;
            let mut list = Vec::new();
            for part in refs.split(' ').filter(|p| !p.is_empty()) {
                let (seg, row) = part
                    .split_once(':')
                    .ok_or_else(|| format!("{name}:{}: bad ref {part:?}", lineno + 1))?;
                let seg: u64 = seg
                    .parse()
                    .map_err(|e| format!("{name}:{}: bad seg: {e}", lineno + 1))?;
                let row: u64 = row
                    .parse()
                    .map_err(|e| format!("{name}:{}: bad row: {e}", lineno + 1))?;
                list.push((seg, row));
            }
            map.insert(key, list);
        }
        Ok(map)
    }

    /// Load specific `(seg, row)` refs (sorted), filter, and append.
    fn load_refs(
        &self,
        kind: Kind,
        refs: &[(u64, u64)],
        q: &Query,
        out: &mut Vec<Rec>,
        stats: &mut QueryStats,
    ) -> Result<(), String> {
        let mut i = 0;
        while i < refs.len() {
            let seg_id = refs[i].0;
            let mut rows = Vec::new();
            while i < refs.len() && refs[i].0 == seg_id {
                rows.push(refs[i].1);
                i += 1;
            }
            let seg = self
                .segments
                .get(seg_id as usize)
                .ok_or_else(|| format!("index references unknown segment {seg_id}"))?;
            if seg.kind != kind {
                return Err(format!(
                    "index for {} references {} segment {seg_id}",
                    kind.tag(),
                    seg.kind.tag()
                ));
            }
            let recs = self.load_segment(seg_id, Some(&rows), stats)?;
            out.extend(recs.into_iter().filter(|r| q.matches(r)));
        }
        Ok(())
    }

    /// Load a segment; `rows` restricts to specific row numbers
    /// (sorted), `None` loads everything.
    fn load_segment(
        &self,
        seg_id: u64,
        rows: Option<&[u64]>,
        stats: &mut QueryStats,
    ) -> Result<Vec<Rec>, String> {
        let seg = self
            .segments
            .get(seg_id as usize)
            .ok_or_else(|| format!("unknown segment {seg_id}"))?;
        let path = self.dir.join(&seg.file);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        stats.segments_read += 1;
        stats.bytes_read += text.len() as u64;
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let (kind, run, declared) =
            parse_segment_header(header).map_err(|e| format!("{}: {e}", path.display()))?;
        if kind != seg.kind || run != seg.run || declared != seg.rows {
            return Err(format!(
                "{}: header disagrees with manifest",
                path.display()
            ));
        }
        let mut out = Vec::new();
        let mut want = rows.map(|r| r.iter().copied().peekable());
        for (row_no, line) in lines.enumerate() {
            let take = match &mut want {
                None => true,
                Some(it) => {
                    if it.peek() == Some(&(row_no as u64)) {
                        it.next();
                        true
                    } else {
                        false
                    }
                }
            };
            if take {
                let rec = Rec::from_row(seg.kind, &seg.run, line)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), row_no + 2))?;
                out.push(rec);
                stats.rows_loaded += 1;
            }
        }
        Ok(out)
    }

    /// Structural validation for `evidence_check --evdb`: every
    /// catalogued file exists and agrees with the manifest, postings
    /// stay in bounds, and — crucially — every ingested evidence file
    /// still exists with the ingested byte size, so a stale store
    /// cannot silently answer for evidence that changed under it.
    /// Spill manifests among the sources are re-read (they are tiny)
    /// to keep the `io_errors == 0` guarantee without rescanning any
    /// chunk.
    pub fn validate(&self) -> Vec<String> {
        let mut findings = Vec::new();
        let mut total_rows = 0u64;
        for (seg_id, seg) in self.segments.iter().enumerate() {
            total_rows += seg.rows;
            let path = self.dir.join(&seg.file);
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    findings.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            let mut lines = text.lines();
            match parse_segment_header(lines.next().unwrap_or("")) {
                Ok((kind, run, rows)) => {
                    if kind != seg.kind || run != seg.run || rows != seg.rows {
                        findings.push(format!(
                            "{}: header disagrees with manifest",
                            path.display()
                        ));
                    }
                }
                Err(e) => findings.push(format!("{}: {e}", path.display())),
            }
            let mut body_rows = 0u64;
            for (row_no, line) in lines.enumerate() {
                body_rows += 1;
                if let Err(e) = Rec::from_row(seg.kind, &seg.run, line) {
                    findings.push(format!("{}:{}: {e}", path.display(), row_no + 2));
                }
            }
            if body_rows != seg.rows {
                findings.push(format!(
                    "{}: {body_rows} rows, manifest promises {}",
                    path.display(),
                    seg.rows
                ));
            }
            let _ = seg_id;
        }
        if total_rows != self.records {
            findings.push(format!(
                "segments hold {total_rows} rows, manifest promises {}",
                self.records
            ));
        }
        for name in &self.indexes {
            let path = self.dir.join(name);
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    findings.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            for (lineno, line) in text.lines().enumerate() {
                let Some((_, refs)) = line.split_once('|') else {
                    findings.push(format!("{name}:{}: no key separator", lineno + 1));
                    continue;
                };
                for part in refs.split(' ').filter(|p| !p.is_empty()) {
                    let parsed = part
                        .split_once(':')
                        .and_then(|(s, r)| Some((s.parse::<u64>().ok()?, r.parse::<u64>().ok()?)));
                    match parsed {
                        Some((seg, row)) => {
                            let in_bounds = self
                                .segments
                                .get(seg as usize)
                                .is_some_and(|m| row < m.rows);
                            if !in_bounds {
                                findings.push(format!(
                                    "{name}:{}: ref {part} out of bounds",
                                    lineno + 1
                                ));
                            }
                        }
                        None => findings.push(format!("{name}:{}: bad ref {part:?}", lineno + 1)),
                    }
                }
            }
        }
        let evidence_root = PathBuf::from(&self.evidence_dir);
        for src in &self.sources {
            let path = evidence_root.join(&src.rel);
            match std::fs::metadata(&path) {
                Ok(m) if m.len() == src.bytes => {}
                Ok(m) => findings.push(format!(
                    "{}: {} bytes now, {} at ingest (stale store — re-ingest)",
                    path.display(),
                    m.len(),
                    src.bytes
                )),
                Err(e) => findings.push(format!(
                    "{}: source gone: {e} (stale store — re-ingest)",
                    path.display()
                )),
            }
            if src.rel.ends_with("manifest.json") {
                check_spill_manifest(&path, &mut findings);
            }
        }
        findings
    }

    /// Write `query_report.json` describing the last query's cost —
    /// the exported evidence that an indexed answer skipped the raw
    /// evidence entirely.
    pub fn write_query_report(&self, q: &Query, stats: &QueryStats) -> Result<PathBuf, String> {
        let path = self.dir.join(QUERY_REPORT);
        let window = q
            .window
            .map_or_else(|| "null".to_string(), |(a, b)| format!("\"{a}..{b}\""));
        let body = format!(
            "{{\n  \"report\": \"evdb_query\",\n  \"query\": {{\n    \"kind\": {},\n    \
             \"run\": {},\n    \"service\": {},\n    \"category\": {},\n    \"subsystem\": {},\n    \
             \"class\": {},\n    \"actionable\": {},\n    \"corr\": {},\n    \
             \"window\": {}\n  }},\n  \"stats\": {{\n    \"index_files_read\": {},\n    \
             \"segments_read\": {},\n    \"rows_loaded\": {},\n    \"rows_matched\": {},\n    \
             \"bytes_read\": {},\n    \"source_files_read\": {}\n  }}\n}}\n",
            q.kind
                .map_or_else(|| "null".to_string(), |k| json_str(k.tag())),
            q.run
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            q.service
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            q.category
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            q.subsystem
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            q.class
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            q.actionable
                .map_or_else(|| "null".to_string(), |a| a.to_string()),
            q.corr.map_or_else(|| "null".to_string(), |c| c.to_string()),
            window,
            stats.index_files_read,
            stats.segments_read,
            stats.rows_loaded,
            stats.rows_matched,
            stats.bytes_read,
            stats.source_files_read,
        );
        std::fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(path)
    }
}

enum Plan {
    Index {
        field: &'static str,
        lo: String,
        hi: String,
    },
    Scan,
}

impl Plan {
    fn exact(field: &'static str, key: String) -> Plan {
        Plan::Index {
            field,
            lo: key.clone(),
            hi: key,
        }
    }
}

fn parse_segment_header(header: &str) -> Result<(Kind, String, u64), String> {
    let f: Vec<&str> = header.split('|').collect();
    if f.len() != 5 || f[0] != "evseg" {
        return Err(format!("bad segment header {header:?}"));
    }
    if f[1] != SEG_VERSION.to_string() {
        return Err(format!("unsupported segment version {:?}", f[1]));
    }
    let kind = Kind::from_tag(f[2]).ok_or_else(|| format!("bad segment kind {:?}", f[2]))?;
    let run = unescape(f[3])?;
    let rows: u64 = f[4]
        .parse()
        .map_err(|e| format!("bad segment row count: {e}"))?;
    Ok((kind, run, rows))
}

fn check_spill_manifest(path: &Path, findings: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return; // already reported as a missing source
    };
    let Ok(doc) = jsonv::parse(&text) else {
        findings.push(format!("{}: spill manifest unparsable", path.display()));
        return;
    };
    if doc.get("report").and_then(|v| v.as_str()) != Some("trace_spill") {
        return; // some other manifest.json; not a spill
    }
    match doc.get("io_errors").and_then(|v| v.as_u64()) {
        Some(0) => {}
        Some(n) => findings.push(format!(
            "{}: spill manifest reports {n} io error(s)",
            path.display()
        )),
        None => findings.push(format!(
            "{}: spill manifest missing io_errors count",
            path.display()
        )),
    }
}

fn prepare_store_dir(store_dir: &Path) -> Result<(), String> {
    if store_dir.exists() {
        let manifest = store_dir.join(STORE_MANIFEST);
        let is_store = std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|t| jsonv::parse(&t).ok())
            .and_then(|d| d.get("report").and_then(|v| v.as_str().map(String::from)))
            .as_deref()
            == Some("evdb_manifest");
        let empty = std::fs::read_dir(store_dir)
            .map(|mut d| d.next().is_none())
            .unwrap_or(false);
        if !is_store && !empty {
            return Err(format!(
                "{}: exists and is not an evdb store; refusing to clobber",
                store_dir.display()
            ));
        }
        std::fs::remove_dir_all(store_dir).map_err(|e| format!("{}: {e}", store_dir.display()))?;
    }
    std::fs::create_dir_all(store_dir).map_err(|e| format!("{}: {e}", store_dir.display()))
}

fn write_manifest(
    store_dir: &Path,
    evidence_dir: &Path,
    records: u64,
    segments: &[SegMeta],
    indexes: &[String],
    sources: &[SourceFile],
) -> Result<(), String> {
    let mut out = String::from("{\n  \"report\": \"evdb_manifest\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"evidence_dir\": {},\n  \"records\": {records},\n",
        json_str(&evidence_dir.display().to_string())
    ));
    out.push_str("  \"segments\": [");
    for (i, s) in segments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"kind\": {}, \"run\": {}, \"rows\": {}}}",
            json_str(&s.file),
            json_str(s.kind.tag()),
            json_str(&s.run),
            s.rows
        ));
    }
    if !segments.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"indexes\": [");
    for (i, name) in indexes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}", json_str(name)));
    }
    if !indexes.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"sources\": [");
    for (i, s) in sources.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"bytes\": {}, \"run\": {}}}",
            json_str(&s.rel),
            s.bytes,
            json_str(&s.run)
        ));
    }
    if !sources.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    let path = store_dir.join(STORE_MANIFEST);
    std::fs::write(&path, out).map_err(|e| format!("{}: {e}", path.display()))
}

fn write_ingest_report(store_dir: &Path, report: &IngestReport) -> Result<(), String> {
    let mut out = String::from("{\n  \"report\": \"evdb_ingest\",\n");
    out.push_str(&format!(
        "  \"records\": {},\n  \"segments\": {},\n  \"index_files\": {},\n  \"sources\": {},\n  \
         \"sources_parsed\": {},\n  \"sources_reused\": {},\n",
        report.records,
        report.segments,
        report.index_files,
        report.sources.len(),
        report.sources_parsed,
        report.sources_reused
    ));
    out.push_str("  \"warnings\": [");
    for (i, w) in report.warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}", json_str(w)));
    }
    if !report.warnings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    let path = store_dir.join(INGEST_REPORT);
    std::fs::write(&path, out).map_err(|e| format!("{}: {e}", path.display()))
}
