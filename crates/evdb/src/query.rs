//! The query model: which records match, independent of backend.
//!
//! The predicate here is the *only* definition of what a query means.
//! The indexed store uses its indexes purely to shrink the candidate
//! set, then applies this same predicate; the linear scan applies it to
//! everything. A filter on a field a record kind does not have excludes
//! that kind outright (asking for `--service` excludes trace events;
//! asking for `--corr` or `--subsystem` excludes SLO samples), so a
//! query's result set is never padded with records the filter could
//! not examine.
//!
//! `--category` means the record's own category: the fault-category
//! label for incidents, the registered event *code* for trace events
//! (`db-crash`, `diagnose`, ...). The subsystem tag is a separate
//! `--subsystem` filter, and [`Query::validate`] holds both to the
//! closed world declared in `intelliqos_simkern::trace::TRACE_REGISTRY`.

use crate::model::{Kind, Rec};

/// A conjunctive filter over the store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    /// Restrict to one record kind.
    pub kind: Option<Kind>,
    /// Restrict to one run label.
    pub run: Option<String>,
    /// Service key (incidents and SLO samples).
    pub service: Option<String>,
    /// Incident category label / trace event code.
    pub category: Option<String>,
    /// Trace subsystem tag (`fault`, `agent`, ...); trace events only.
    pub subsystem: Option<String>,
    /// Failure-class label (`service-fault`, `client-workload`,
    /// `transient-abort`); incidents only.
    pub class: Option<String>,
    /// Actionability filter; incidents only.
    pub actionable: Option<bool>,
    /// Correlation id (incident id, trace `corr`).
    pub corr: Option<u64>,
    /// Inclusive time window over incident onset / trace `at`.
    pub window: Option<(u64, u64)>,
}

impl Query {
    /// Parse the CLI `t0..t1` window syntax.
    pub fn parse_window(s: &str) -> Result<(u64, u64), String> {
        let (a, b) = s
            .split_once("..")
            .ok_or_else(|| format!("window {s:?} is not t0..t1"))?;
        let t0: u64 = a.parse().map_err(|e| format!("bad window start: {e}"))?;
        let t1: u64 = b.parse().map_err(|e| format!("bad window end: {e}"))?;
        if t0 > t1 {
            return Err(format!("window start {t0} after end {t1}"));
        }
        Ok((t0, t1))
    }

    /// Whether `kind` can possibly satisfy the set filters — used by
    /// the store to skip whole kinds without touching disk.
    pub fn admits_kind(&self, kind: Kind) -> bool {
        if self.kind.is_some_and(|k| k != kind) {
            return false;
        }
        match kind {
            Kind::Incident => self.subsystem.is_none(),
            Kind::Trace => {
                self.service.is_none() && self.class.is_none() && self.actionable.is_none()
            }
            Kind::Slo => {
                self.corr.is_none()
                    && self.category.is_none()
                    && self.subsystem.is_none()
                    && self.class.is_none()
                    && self.actionable.is_none()
                    && self.window.is_none()
            }
        }
    }

    /// Closed-world validation for operator-facing queries (the CLI
    /// runs this; programmatic callers may query synthetic categories
    /// freely): `category` must be a registered trace code or a known
    /// fault-category label, and `subsystem` must be a registered
    /// subsystem tag. A typo'd filter is an error with the nearest
    /// registered code, never a silently empty result.
    pub fn validate(&self) -> Result<(), String> {
        use intelliqos_cluster::faults::FaultCategory;
        use intelliqos_simkern::trace::{nearest_registered_code, registered_codes, Subsystem};

        if let Some(c) = self.category.as_deref() {
            let known_code = registered_codes().contains(&c);
            let known_label = FaultCategory::ALL.iter().any(|f| f.label() == c);
            if !known_code && !known_label {
                let hint = match nearest_registered_code(c) {
                    Some((near, d)) if d <= intelliqos_simkern::trace::NEAR_MISS_DISTANCE => {
                        format!("; did you mean {near:?}?")
                    }
                    _ => String::new(),
                };
                return Err(format!(
                    "category {c:?} is neither a registered trace code nor a fault category label{hint}"
                ));
            }
        }
        if let Some(s) = self.subsystem.as_deref() {
            if Subsystem::from_tag(s).is_none() {
                let tags: Vec<&str> = Subsystem::ALL.iter().map(|v| v.tag()).collect();
                return Err(format!(
                    "subsystem {s:?} is not a registered tag (one of: {})",
                    tags.join(", ")
                ));
            }
        }
        if let Some(c) = self.class.as_deref() {
            use intelliqos_core::downtime::FailureClass;
            use intelliqos_simkern::trace::{edit_distance, NEAR_MISS_DISTANCE};
            if FailureClass::parse(c).is_none() {
                let hint = FailureClass::ALL
                    .into_iter()
                    .map(|f| (f.label(), edit_distance(c, f.label())))
                    .min_by_key(|&(l, d)| (d, l))
                    .filter(|&(_, d)| d <= NEAR_MISS_DISTANCE)
                    .map(|(l, _)| format!("; did you mean {l:?}?"))
                    .unwrap_or_default();
                let labels: Vec<&str> = FailureClass::ALL.iter().map(|f| f.label()).collect();
                return Err(format!(
                    "class {c:?} is not a failure class (one of: {}){hint}",
                    labels.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// The full predicate.
    pub fn matches(&self, rec: &Rec) -> bool {
        if !self.admits_kind(rec.kind()) {
            return false;
        }
        if let Some(run) = &self.run {
            if rec.run() != run {
                return false;
            }
        }
        match rec {
            Rec::Incident(r) => {
                self.corr.is_none_or(|c| r.id == c)
                    && self.service.as_deref().is_none_or(|s| r.service == s)
                    && self.category.as_deref().is_none_or(|c| r.category == c)
                    && self.class.as_deref().is_none_or(|c| r.failure_class == c)
                    && self.actionable.is_none_or(|a| r.is_actionable == a)
                    && self
                        .window
                        .is_none_or(|(t0, t1)| r.onset >= t0 && r.onset <= t1)
            }
            Rec::Trace(r) => {
                self.corr.is_none_or(|c| r.corr == Some(c))
                    && self.category.as_deref().is_none_or(|c| r.code == c)
                    && self.subsystem.as_deref().is_none_or(|s| r.subsystem == s)
                    && self.window.is_none_or(|(t0, t1)| r.at >= t0 && r.at <= t1)
            }
            Rec::Slo(r) => self.service.as_deref().is_none_or(|s| r.service == s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SloRec, TraceRec};

    fn trace(corr: Option<u64>, at: u64) -> Rec {
        Rec::Trace(TraceRec {
            run: "r".to_string(),
            seq: 0,
            at,
            subsystem: "agent".to_string(),
            code: "x".to_string(),
            corr,
            detail: String::new(),
        })
    }

    #[test]
    fn service_filter_excludes_trace_events() {
        let q = Query {
            service: Some("db003".to_string()),
            ..Query::default()
        };
        assert!(!q.matches(&trace(Some(1), 0)));
        assert!(q.matches(&Rec::Slo(SloRec {
            run: "r".to_string(),
            service: "db003".to_string(),
            incidents: 0,
            downtime_secs: 0,
            availability: 1.0,
            mttr_secs: 0.0,
            burn_alerts: 0,
            target: 0.9999,
        })));
    }

    fn incident(class: &str, actionable: bool) -> Rec {
        Rec::Incident(crate::model::IncidentRec {
            run: "r".to_string(),
            id: 1,
            category: "Hardware".to_string(),
            service: "db003".to_string(),
            description: String::new(),
            onset: 0,
            detected: None,
            diagnosed: None,
            restored: None,
            actor: None,
            action: None,
            escalated: false,
            failure_class: class.to_string(),
            is_actionable: actionable,
            attempts: Vec::new(),
        })
    }

    #[test]
    fn class_and_actionable_filter_incidents_only() {
        let q = Query {
            class: Some("service-fault".to_string()),
            ..Query::default()
        };
        assert!(q.matches(&incident("service-fault", true)));
        assert!(!q.matches(&incident("client-workload", false)));
        assert!(!q.matches(&trace(None, 0)), "class excludes trace events");
        let q = Query {
            actionable: Some(false),
            ..Query::default()
        };
        assert!(q.matches(&incident("transient-abort", false)));
        assert!(!q.matches(&incident("service-fault", true)));
        assert!(!q.admits_kind(Kind::Slo));
        assert!(!q.admits_kind(Kind::Trace));
    }

    #[test]
    fn validate_holds_class_to_the_closed_world() {
        let with_class = |c: &str| Query {
            class: Some(c.to_string()),
            ..Query::default()
        };
        assert!(with_class("service-fault").validate().is_ok());
        assert!(with_class("client-workload").validate().is_ok());
        assert!(with_class("transient-abort").validate().is_ok());
        let err = with_class("servce-fault").validate().unwrap_err();
        assert!(
            err.contains("service-fault"),
            "typo suggests the label: {err}"
        );
        assert!(with_class("everything").validate().is_err());
    }

    #[test]
    fn corr_filter_requires_a_correlated_event() {
        let q = Query {
            corr: Some(4),
            ..Query::default()
        };
        assert!(q.matches(&trace(Some(4), 0)));
        assert!(!q.matches(&trace(Some(5), 0)));
        assert!(!q.matches(&trace(None, 0)));
    }

    #[test]
    fn category_matches_trace_codes_and_subsystem_is_separate() {
        let q = Query {
            category: Some("x".to_string()),
            ..Query::default()
        };
        assert!(q.matches(&trace(None, 0)), "code 'x' should match");
        let q = Query {
            category: Some("agent".to_string()),
            ..Query::default()
        };
        assert!(
            !q.matches(&trace(None, 0)),
            "the subsystem tag is not the category any more"
        );
        let q = Query {
            subsystem: Some("agent".to_string()),
            ..Query::default()
        };
        assert!(q.matches(&trace(None, 0)));
        assert!(!q.matches(&Rec::Slo(SloRec {
            run: "r".to_string(),
            service: "db003".to_string(),
            incidents: 0,
            downtime_secs: 0,
            availability: 1.0,
            mttr_secs: 0.0,
            burn_alerts: 0,
            target: 0.9999,
        })));
    }

    #[test]
    fn validate_holds_filters_to_the_closed_world() {
        let ok = |category: Option<&str>, subsystem: Option<&str>| Query {
            category: category.map(String::from),
            subsystem: subsystem.map(String::from),
            ..Query::default()
        };
        assert!(ok(Some("db-crash"), None).validate().is_ok());
        assert!(ok(Some("Mid-crash"), None).validate().is_ok());
        assert!(ok(None, Some("fault")).validate().is_ok());
        assert!(ok(None, None).validate().is_ok());
        let err = ok(Some("db-carsh"), None).validate().unwrap_err();
        assert!(err.contains("db-crash"), "typo suggests the code: {err}");
        assert!(ok(None, Some("faults")).validate().is_err());
    }

    #[test]
    fn window_is_inclusive_on_both_ends() {
        let q = Query {
            window: Some((10, 20)),
            ..Query::default()
        };
        assert!(q.matches(&trace(None, 10)));
        assert!(q.matches(&trace(None, 20)));
        assert!(!q.matches(&trace(None, 9)));
        assert!(!q.matches(&trace(None, 21)));
        assert_eq!(Query::parse_window("10..20"), Ok((10, 20)));
        assert!(Query::parse_window("20..10").is_err());
        assert!(Query::parse_window("nope").is_err());
    }
}
