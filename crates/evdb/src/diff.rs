//! Paired-run comparison: `evdb diff runA runB`.
//!
//! The core evaluation of the paper is a before/after contrast —
//! manual operations vs intelliagents on the same fault tape. The diff
//! aggregates each run's evidence (incident counts by category, total
//! downtime, escalations, trace volume by subsystem, per-service
//! availability) into one side-by-side table so the contrast is a
//! single query instead of a notebook of ad-hoc greps.

use std::collections::BTreeMap;

use crate::model::Rec;

#[derive(Default)]
struct RunAgg {
    incidents: u64,
    escalated: u64,
    downtime_secs: u64,
    by_category: BTreeMap<String, u64>,
    trace_events: u64,
    by_subsystem: BTreeMap<String, u64>,
    slo: BTreeMap<String, (f64, f64)>, // service -> (availability, mttr)
}

fn aggregate(recs: &[Rec]) -> RunAgg {
    let mut agg = RunAgg::default();
    for rec in recs {
        match rec {
            Rec::Incident(r) => {
                agg.incidents += 1;
                if r.escalated {
                    agg.escalated += 1;
                }
                if let Some(restored) = r.restored {
                    agg.downtime_secs += restored.saturating_sub(r.onset);
                }
                *agg.by_category.entry(r.category.clone()).or_default() += 1;
            }
            Rec::Trace(r) => {
                agg.trace_events += 1;
                *agg.by_subsystem.entry(r.subsystem.clone()).or_default() += 1;
            }
            Rec::Slo(r) => {
                agg.slo
                    .insert(r.service.clone(), (r.availability, r.mttr_secs));
            }
        }
    }
    agg
}

/// Render the side-by-side comparison of two runs' records (each the
/// result of a `run = label` query).
pub fn diff_runs(a: &[Rec], run_a: &str, b: &[Rec], run_b: &str) -> String {
    let (aa, bb) = (aggregate(a), aggregate(b));
    let mut out = format!("== evdb diff: {run_a} vs {run_b}\n");
    out.push_str(&format!(
        "incidents:       {:>8} {:>8}\nescalated:       {:>8} {:>8}\ndowntime_secs:   {:>8} {:>8}\n",
        aa.incidents, bb.incidents, aa.escalated, bb.escalated, aa.downtime_secs, bb.downtime_secs
    ));
    let categories: Vec<&String> = {
        let mut keys: Vec<&String> = aa.by_category.keys().chain(bb.by_category.keys()).collect();
        keys.sort();
        keys.dedup();
        keys
    };
    if !categories.is_empty() {
        out.push_str("incidents by category:\n");
        for c in categories {
            out.push_str(&format!(
                "  {:<28} {:>6} {:>6}\n",
                c,
                aa.by_category.get(c).copied().unwrap_or(0),
                bb.by_category.get(c).copied().unwrap_or(0)
            ));
        }
    }
    out.push_str(&format!(
        "trace events:    {:>8} {:>8}\n",
        aa.trace_events, bb.trace_events
    ));
    let subsystems: Vec<&String> = {
        let mut keys: Vec<&String> = aa
            .by_subsystem
            .keys()
            .chain(bb.by_subsystem.keys())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    };
    if !subsystems.is_empty() {
        out.push_str("trace events by subsystem:\n");
        for s in subsystems {
            out.push_str(&format!(
                "  {:<28} {:>6} {:>6}\n",
                s,
                aa.by_subsystem.get(s).copied().unwrap_or(0),
                bb.by_subsystem.get(s).copied().unwrap_or(0)
            ));
        }
    }
    let services: Vec<&String> = {
        let mut keys: Vec<&String> = aa.slo.keys().chain(bb.slo.keys()).collect();
        keys.sort();
        keys.dedup();
        keys
    };
    if !services.is_empty() {
        out.push_str("slo availability (mttr):\n");
        for svc in services {
            let fmt = |v: Option<&(f64, f64)>| {
                v.map_or_else(
                    || format!("{:>10} {:>10}", "-", "-"),
                    |(av, mttr)| format!("{av:>10.8} {mttr:>9.2}s"),
                )
            };
            out.push_str(&format!(
                "  {:<14} {}   {}\n",
                svc,
                fmt(aa.slo.get(svc)),
                fmt(bb.slo.get(svc))
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IncidentRec, SloRec};

    fn incident(run: &str, id: u64, category: &str, escalated: bool, downtime: u64) -> Rec {
        Rec::Incident(IncidentRec {
            run: run.to_string(),
            id,
            category: category.to_string(),
            service: "db003".to_string(),
            description: String::new(),
            onset: 100,
            detected: Some(110),
            diagnosed: None,
            restored: Some(100 + downtime),
            actor: None,
            action: None,
            escalated,
            failure_class: "service-fault".to_string(),
            is_actionable: true,
            attempts: Vec::new(),
        })
    }

    #[test]
    fn diff_tabulates_both_sides_over_the_category_union() {
        let a = vec![
            incident("m", 0, "MidJobDbCrash", true, 3600),
            incident("m", 1, "DiskFull", false, 600),
        ];
        let b = vec![
            incident("g", 0, "MidJobDbCrash", false, 120),
            Rec::Slo(SloRec {
                run: "g".to_string(),
                service: "db003".to_string(),
                incidents: 1,
                downtime_secs: 120,
                availability: 0.99930556,
                mttr_secs: 110.0,
                burn_alerts: 0,
                target: 0.9999,
            }),
        ];
        let text = diff_runs(&a, "m", &b, "g");
        assert!(text.contains("incidents:              2        1"));
        assert!(text.contains("MidJobDbCrash"));
        assert!(text.contains("DiskFull"));
        assert!(text.contains("db003"));
        assert!(text.contains("0.99930556"));
    }
}
