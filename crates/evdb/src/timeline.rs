//! Evidence-backed incident timelines: the rendering `triage
//! --incident N` prints when it answers from evidence instead of
//! re-running the simulation.
//!
//! Exactly one renderer exists, and both triage backends call it with
//! the result of the same correlation query — the indexed store on one
//! side, the linear scan on the other. That is the second half of the
//! byte-identity guarantee: the backends can only differ if the record
//! sets differ, which the equivalence property test rules out.

use crate::model::{IncidentRec, Rec, TraceRec};

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

/// Render every incident with the given id across all runs in `recs`
/// (the sorted result of a `corr = id` query), each followed by its
/// correlated trace timeline.
pub fn render_corr_timelines(recs: &[Rec], id: u64) -> String {
    let incidents: Vec<&IncidentRec> = recs
        .iter()
        .filter_map(|r| match r {
            Rec::Incident(inc) if inc.id == id => Some(inc),
            _ => None,
        })
        .collect();
    if incidents.is_empty() {
        return format!("no incident {id} in evidence\n");
    }
    let mut out = String::new();
    for inc in incidents {
        out.push_str(&format!("--- {}: incident {} ---\n", inc.run, inc.id));
        out.push_str(&format!(
            "category={} service={}\n{}\n",
            inc.category, inc.service, inc.description
        ));
        out.push_str(&format!(
            "ledger: onset={} detected={} diagnosed={} restored={} escalated={}\n",
            inc.onset,
            opt(inc.detected),
            opt(inc.diagnosed),
            opt(inc.restored),
            inc.escalated
        ));
        if !inc.attempts.is_empty() {
            out.push_str("attempts:\n");
            for a in &inc.attempts {
                out.push_str(&format!(
                    "  at={} actor={} action={} resolved={}\n",
                    a.at, a.actor, a.action, a.resolved
                ));
            }
        }
        let mut events: Vec<&TraceRec> = recs
            .iter()
            .filter_map(|r| match r {
                Rec::Trace(t) if t.run == inc.run && t.corr == Some(id) => Some(t),
                _ => None,
            })
            .collect();
        events.sort_by_key(|e| (e.at, e.seq));
        out.push_str(&format!("timeline ({} events):\n", events.len()));
        for e in events {
            out.push_str(&format!(
                "  {:>8} {:<6} {:<18} {}\n",
                e.at, e.subsystem, e.code, e.detail
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AttemptRec;

    #[test]
    fn timeline_renders_incident_then_time_sorted_events() {
        let recs = vec![
            Rec::Incident(IncidentRec {
                run: "run_a".to_string(),
                id: 2,
                category: "MidJobDbCrash".to_string(),
                service: "db003".to_string(),
                description: "db crashed".to_string(),
                onset: 100,
                detected: Some(110),
                diagnosed: Some(120),
                restored: Some(300),
                actor: Some("db_agent".to_string()),
                action: Some("restart".to_string()),
                escalated: false,
                failure_class: "transient-abort".to_string(),
                is_actionable: false,
                attempts: vec![AttemptRec {
                    at: 130,
                    actor: "db_agent".to_string(),
                    action: "restart".to_string(),
                    resolved: true,
                }],
            }),
            Rec::Trace(TraceRec {
                run: "run_a".to_string(),
                seq: 9,
                at: 110,
                subsystem: "agent".to_string(),
                code: "detect".to_string(),
                corr: Some(2),
                detail: "db003".to_string(),
            }),
            Rec::Trace(TraceRec {
                run: "run_a".to_string(),
                seq: 4,
                at: 100,
                subsystem: "fault".to_string(),
                code: "inject".to_string(),
                corr: Some(2),
                detail: "db003".to_string(),
            }),
        ];
        let text = render_corr_timelines(&recs, 2);
        assert!(text.starts_with("--- run_a: incident 2 ---\n"));
        assert!(text.contains("timeline (2 events):"));
        let tl = &text[text.find("timeline").unwrap()..];
        let inject = tl.find("inject").unwrap();
        let detect = tl.find("detect").unwrap();
        assert!(inject < detect, "events render in time order");
        assert!(render_corr_timelines(&recs, 99).contains("no incident 99"));
    }
}
