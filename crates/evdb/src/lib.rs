//! # intelliqos-evdb
//!
//! The embedded evidence store: every incident, trace event, and SLO
//! sample the run pipeline writes under `results/evidence/` becomes a
//! typed, indexed, cross-run-queryable record.
//!
//! The flat evidence layout is the source of truth; this crate is a
//! deterministic *index over it*, rebuilt by `evdb ingest`
//! (incrementally by default: runs whose evidence files still match
//! the manifest by path and byte size are copied forward, not
//! re-parsed). Two backends answer every query:
//!
//! * [`store`] — segments plus secondary indexes (service, category,
//!   subsystem, correlation id, run label, hour-bucketed time), read
//!   without ever re-opening the raw evidence;
//! * [`scan`] — the linear reference scan over the evidence directory.
//!
//! Both share one extraction ([`extract`]), one predicate
//! ([`query::Query::matches`]), one result order
//! ([`model::Rec::sort_key`]), and one timeline renderer
//! ([`timeline`]) — so an indexed answer is byte-identical to the scan
//! answer by construction, and the equivalence property test holds the
//! construction to it.
//!
//! Zero external dependencies, pure std, fully deterministic: the same
//! evidence directory always produces the same store bytes.

#![warn(missing_docs)]

pub mod diff;
pub mod extract;
pub mod model;
pub mod query;
pub mod scan;
pub mod store;
pub mod timeline;

pub use diff::diff_runs;
pub use extract::{
    extract_dir, extract_dir_incremental, Extraction, IncrementalExtraction, SourceFile,
};
pub use model::{AttemptRec, IncidentRec, Kind, Rec, SloRec, TraceRec};
pub use query::Query;
pub use scan::{scan_query, ScanStats};
pub use store::{IngestReport, QueryStats, SegMeta, Store};
pub use timeline::render_corr_timelines;
