//! Quickstart: the paper's before/after experiment at small scale.
//!
//! Builds a 14-server datacenter, runs two simulated weeks of the same
//! fault tape and analyst workload twice — once under manual operations
//! (year-1 conditions: notify-only monitoring, human repair), once with
//! the intelliagent layer — and prints the Figure 2 style downtime
//! breakdown for both.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use intelliqos::prelude::*;

fn main() {
    let seed = 42;
    println!("intelliqos quickstart — paired before/after, seed {seed}\n");

    let mut reports = Vec::new();
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let cfg = ScenarioConfig::small(seed, mode);
        let report = run_scenario(cfg);
        println!("--- {mode:?} ---");
        for line in report.figure2_table() {
            println!("{line}");
        }
        println!(
            "jobs completed: {} / {}   db mid-job crashes: {}\n",
            report.lsf.completed, report.lsf.submitted, report.db_crashes
        );
        reports.push(report);
    }

    let before = &reports[0];
    let after = &reports[1];
    let factor = before.total_downtime_hours / after.total_downtime_hours.max(0.01);
    println!(
        "downtime: {:.1} h (manual) -> {:.1} h (intelliagents) = {factor:.1}x reduction",
        before.total_downtime_hours, after.total_downtime_hours
    );
    println!(
        "detection: mid-job crashes took {:.1} h to notice manually, {:.0} min with agents",
        before.mean_detection_hours(FaultCategory::MidJobDbCrash),
        after.mean_detection_hours(FaultCategory::MidJobDbCrash) * 60.0
    );
}
