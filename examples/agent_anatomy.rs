//! Agent anatomy: one server, one database, four injected faults —
//! watch a service intelliagent monitor → diagnose → heal, with the
//! flag files and causal diagnoses it produces along the way.
//!
//! ```text
//! cargo run --release --example agent_anatomy
//! ```

use intelliqos::cluster::{HardwareSpec, Server, ServerModel};
use intelliqos::core::{AgentParts, NotificationBus};
use intelliqos::ontology::Dlsp;
use intelliqos::prelude::*;
use intelliqos::services::probe;

use intelliqos_cluster::ids::{ServerId, Site};
use intelliqos_core::agents::run_service_agent;
use intelliqos_core::flags::read_flags;
use intelliqos_core::status::{dlsp_path, run_status_agent};

fn main() {
    // One E4500 running one Oracle database.
    let mut server = Server::new(
        ServerId(0),
        "db007",
        HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
        Site::new("London", "LDN-DC1"),
    );
    let mut registry = ServiceRegistry::new();
    let db = registry.deploy(
        ServiceSpec::database("trades-db-07", DbEngine::Oracle),
        ServerId(0),
    );
    registry.start(db, &mut server, SimTime::ZERO).unwrap();
    registry.complete_pending_starts(SimTime::from_mins(30));

    let mut bus = NotificationBus::new();
    let mut rng = SimRng::stream(1, "anatomy");
    let mut now = SimTime::from_mins(30);
    let step = SimDuration::from_mins(5); // the paper's X

    println!("t={now}  database is up; probing like an agent would:");
    let r = probe::probe(registry.get(db).unwrap(), &server, &mut rng);
    println!("  probe -> {r:?} (exit code {})\n", r.exit_code());

    // Inject the paper's fault menagerie one at a time.
    type Break = fn(&mut ServiceRegistry, &mut Server);
    let crash: Break = |reg, srv| {
        reg.get_mut(intelliqos::services::ServiceId(0))
            .unwrap()
            .crash(srv)
    };
    let hang: Break = |reg, _| {
        reg.get_mut(intelliqos::services::ServiceId(0))
            .unwrap()
            .hang()
    };
    let corrupt: Break = |reg, srv| {
        reg.get_mut(intelliqos::services::ServiceId(0))
            .unwrap()
            .corrupt(srv)
    };
    let faults: [(&str, Break); 3] = [("crash", crash), ("hang", hang), ("corruption", corrupt)];

    for (label, break_it) in faults {
        now += step;
        break_it(&mut registry, &mut server);
        println!("t={now}  injected a {label}");

        now += step; // next cron wake-up
        let report = run_service_agent(
            &mut server,
            &mut registry,
            AgentParts::all(),
            &mut bus,
            &mut rng,
            now,
        );
        for finding in &report.findings {
            let diag = finding.diagnosis.as_ref().expect("fault was diagnosed");
            println!(
                "t={now}  agent woke: rule '{}' -> cause: {}",
                diag.rule_id, diag.cause
            );
            for action in &diag.actions {
                println!("          prescribed: {action}");
            }
            if let Some(ready) = finding.repair_completes {
                println!("          repair under way; service ready at t={ready}");
                now = ready;
                registry.complete_pending_starts(now);
            }
        }
        let flags = read_flags(&server.fs, "intelliagent_service");
        println!(
            "          flag file: /logs/intelliagents/intelliagent_service/run_{}.{:?}\n",
            flags.last().unwrap().run_at_secs,
            flags.last().unwrap().outcome
        );
    }

    // Finally, the status agent compiles the DLSP the admin servers
    // aggregate into the global DGSPL.
    now += step;
    let _dlsp = run_status_agent(&mut server, &registry, &mut rng, now);
    println!(
        "t={now}  status agent compiled the DLSP ({}):",
        dlsp_path("db007")
    );
    let file = server.fs.read(&dlsp_path("db007")).unwrap();
    for line in &file.lines {
        println!("  {line}");
    }
    let parsed = Dlsp::parse_text(&file.lines.join("\n")).unwrap();
    assert!(parsed.all_services_running());
    println!(
        "\nall services running again; {} notifications were sent to humans",
        bus.log().len()
    );
}
