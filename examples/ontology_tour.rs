//! Ontology tour: the four flat-ASCII knowledge structures and the
//! causal reasoning the agents run over them.
//!
//! Everything prints in the grep-friendly on-disk format — pipe the
//! output through `grep status=` or `cut -d'|' -f1` exactly as the
//! paper's operators would have.
//!
//! ```text
//! cargo run --release --example ontology_tour
//! ```

use intelliqos::ontology::{Bounds, ConstraintStore, Dgspl, FactBase, Issl, IsslEntry, Slkt};
use intelliqos_core::rulesets;
use intelliqos_ontology::dlsp::{Dlsp, DlspService};
use intelliqos_ontology::slkt::{SlktApp, SlktHardware};

fn main() {
    // 1. ISSL — the manually maintained bootstrap index (≤200 entries).
    let mut issl = Issl::new();
    issl.add(IsslEntry {
        hostname: "db007".into(),
        ip: "10.1.0.7".into(),
        services: vec!["trades-db-07".into()],
    })
    .unwrap();
    issl.add(IsslEntry {
        hostname: "fe003".into(),
        ip: "10.2.0.3".into(),
        services: vec!["analyst-fe-03".into()],
    })
    .unwrap();
    println!("== ISSL (index static service list) ==");
    println!("{}\n", issl.to_doc().to_text());

    // 2. SLKT — what db007 *should* look like.
    let slkt = Slkt {
        hostname: "db007".into(),
        ip: "10.1.0.7".into(),
        hardware: SlktHardware {
            model: "Sun-E4500".into(),
            cpus: 8,
            ram_gb: 8,
            disks: 6,
        },
        apps: vec![SlktApp {
            name: "trades-db-07".into(),
            app_type: "db-oracle".into(),
            version: "8.1.7".into(),
            binary_path: "/apps/db/bin".into(),
            port: 1521,
            processes: vec![
                ("ora_pmon".into(), 1),
                ("ora_dbw".into(), 2),
                ("ora_lsnr".into(), 1),
            ],
            startup_sequence: vec!["listener".into(), "instance".into(), "recovery".into()],
            depends_on: vec![],
            mounts: vec!["/apps".into()],
            connect_timeout_secs: 30,
        }],
    };
    println!("== SLKT (static local knowledge template) ==");
    println!("{}\n", slkt.to_doc().to_text());

    // 3. DLSP — what the status agent actually observed (degraded!).
    let dlsp = Dlsp {
        hostname: "db007".into(),
        generated_at_secs: 4500,
        model: "Sun-E4500".into(),
        os: "Solaris".into(),
        cpus: 8,
        ram_gb: 8,
        load_score: 1.22,
        free_mem_mb: 96.0,
        cpu_idle_pct: 2.0,
        users: 4,
        location: "London".into(),
        site: "LDN-DC1".into(),
        services: vec![DlspService {
            name: "trades-db-07".into(),
            app_type: "db-oracle".into(),
            version: "8.1.7".into(),
            status: "timeout".into(),
            latency_ms: None,
        }],
    };
    println!("== DLSP (dynamic local service profile) ==");
    println!("{}\n", dlsp.to_doc().to_text());

    // 4. Constraint check: the §3.6 baselines flag the overload.
    let constraints = ConstraintStore::os_baselines();
    let mut facts_map = std::collections::BTreeMap::new();
    facts_map.insert("cpu_idle_pct".to_string(), 2.0);
    facts_map.insert("free_mem_mb".to_string(), 96.0);
    facts_map.insert("run_queue".to_string(), 9.0);
    println!("== constraint violations (min/max baseline variables) ==");
    for v in constraints.check(&facts_map) {
        println!(
            "var={} value={} bounds=({:?},{:?}) over={}",
            v.var, v.value, v.bounds.min, v.bounds.max, v.over
        );
    }
    // A false alarm would be relaxed per §3.6; show the API.
    let mut adjustable = ConstraintStore::new();
    adjustable.set("run_queue", Bounds::at_most(4.0));
    let widened = adjustable.relax("run_queue", 1.25).unwrap();
    println!(
        "after adaptive adjustment: run_queue max = {:?}\n",
        widened.max
    );

    // 5. Causal reasoning: the facts an agent would assert for the
    // timed-out probe on an overloaded host.
    let rules = rulesets::service_rules();
    let mut facts = FactBase::new();
    facts.assert_fact("probe", "timeout");
    facts.assert_fact("procs_missing", 0.0);
    facts.assert_fact("cpu_util", 1.22);
    println!("== causal diagnosis ==");
    let diag = rules.diagnose(&mut facts).expect("rule fires");
    println!("rule {} -> {}", diag.rule_id, diag.cause);
    for a in &diag.actions {
        println!("  action: {a}");
    }

    // 6. DGSPL — the global list the rescheduler walks, best-first.
    let dgspl = Dgspl::from_dlsps(&[dlsp], 4500, |_, cpus| cpus as f64 * 0.9);
    println!("\n== DGSPL (dynamic global service profile list) ==");
    println!("{}", dgspl.to_doc().to_text());
    println!(
        "(the timed-out database is absent: only running services are\n\
         'available' — the shortlist can never route a job to a dead box)"
    );
}
