//! Batch rescheduling: why DGSPL-guided resubmission beats the users'
//! manual habits.
//!
//! Recreates §4's LSF story in miniature: analysts submit jobs to their
//! favourite database servers regardless of load; overloaded databases
//! crash mid-job; the policies differ in where the *failed* jobs go
//! next. The DGSPL shortlist ("best choice always first", same-model
//! power ordering from the SLKT) avoids both the crashed box and the
//! already-hot ones.
//!
//! ```text
//! cargo run --release --example batch_rescheduling
//! ```

use std::collections::BTreeMap;

use intelliqos::cluster::{Server, ServerModel};
use intelliqos::lsf::{FailReason, LeastLoadedSelector, ManualStickySelector};
use intelliqos::ontology::Dgspl;
use intelliqos::prelude::*;
use intelliqos_cluster::ids::{ServerId, Site};
use intelliqos_core::DgsplSelector;
use intelliqos_ontology::dlsp::{Dlsp, DlspService};

fn make_servers() -> BTreeMap<ServerId, Server> {
    // Six E4500s and two big E10Ks.
    (0..8u32)
        .map(|i| {
            let model = if i < 6 {
                ServerModel::SunE4500
            } else {
                ServerModel::SunE10k
            };
            (
                ServerId(i),
                Server::new(
                    ServerId(i),
                    format!("db{i:03}"),
                    model.default_spec(),
                    Site::new("London", "LDN-DC1"),
                ),
            )
        })
        .collect()
}

/// Build the DGSPL an admin server would generate from DLSPs.
fn dgspl_of(servers: &BTreeMap<ServerId, Server>) -> Dgspl {
    let dlsps: Vec<Dlsp> = servers
        .values()
        .map(|s| Dlsp {
            hostname: s.hostname.clone(),
            generated_at_secs: 0,
            model: s.spec.model.to_string(),
            os: s.os().to_string(),
            cpus: s.spec.cpus,
            ram_gb: s.spec.ram_gb,
            load_score: s.cpu_utilization().min(1.5),
            free_mem_mb: 1024.0,
            cpu_idle_pct: 100.0 * (1.0 - s.cpu_utilization()).max(0.0),
            users: 0,
            location: s.site.location.clone(),
            site: s.site.name.clone(),
            services: vec![DlspService {
                name: format!("db-{}", s.hostname),
                app_type: "db-oracle".into(),
                version: "8.1.7".into(),
                status: "running".into(),
                latency_ms: Some(100.0),
            }],
        })
        .collect();
    Dgspl::from_dlsps(&dlsps, 0, |model, cpus| {
        ServerModel::ALL
            .iter()
            .find(|m| m.to_string() == model)
            .map(|m| m.cpu_power() * cpus as f64)
            .unwrap_or(1.0)
    })
}

fn run_policy(policy: &str) -> (u64, u64) {
    let mut servers = make_servers();
    let mut lsf = LsfCluster::new(servers.keys().copied().collect(), 3);
    let mut rng = SimRng::stream(9, "resched");
    let mut manual = ManualStickySelector::new(SimRng::stream(9, "manual"));
    let host_ids: BTreeMap<String, ServerId> = servers
        .values()
        .map(|s| (s.hostname.clone(), s.id))
        .collect();
    let mut dgspl_sel = DgsplSelector::new(dgspl_of(&servers), host_ids, "db-oracle");

    // Twenty analysts slam the cluster with oversized mining runs.
    let mut now = SimTime::ZERO;
    for round in 0..48u64 {
        now = SimTime::from_mins(round * 30);
        for a in 0..6 {
            let mut spec = JobSpec::defaults_for(
                JobKind::DataMining,
                format!("analyst{:02}", (round + a) % 20),
            );
            spec.cpu_demand *= 1.6; // quarter-end crunch
            lsf.submit(spec, now);
        }
        // Initial submissions always follow user habit.
        lsf.dispatch_pending(&mut manual, &mut servers, |_| true, now);

        // Overloaded databases crash; their jobs fail.
        let crashed: Vec<ServerId> = servers
            .values()
            .filter(|s| {
                !lsf.running_on(s.id).is_empty()
                    && intelliqos::lsf::db_crash_roll(
                        s.cpu_utilization(),
                        SimDuration::from_mins(30),
                        &mut rng,
                    )
            })
            .map(|s| s.id)
            .collect();
        for sid in crashed {
            lsf.fail_all_on(sid, FailReason::DbCrash, &mut servers, now);
        }

        // Resubmit the failed jobs under the policy being compared.
        for id in lsf.failed_ids() {
            lsf.resubmit(id);
        }
        dgspl_sel.update(dgspl_of(&servers)); // fresh 15-minute snapshot
        match policy {
            "dgspl" => {
                lsf.dispatch_pending(&mut dgspl_sel, &mut servers, |_| true, now);
            }
            "manual" => {
                lsf.dispatch_pending(&mut manual, &mut servers, |_| true, now);
            }
            "least-loaded" => {
                lsf.dispatch_pending(&mut LeastLoadedSelector, &mut servers, |_| true, now);
            }
            _ => unreachable!(),
        }

        // Jobs that survived an hour complete (abbreviated runtimes
        // keep the example quick).
        let done: Vec<_> = lsf
            .jobs()
            .filter(|j| j.is_running() && now.since(j.submitted) >= SimDuration::from_mins(60))
            .map(|j| j.id)
            .collect();
        for id in done {
            lsf.complete(id, &mut servers, now);
        }
    }
    let _ = now;
    (lsf.stats().completed, lsf.stats().failed)
}

fn main() {
    println!("resubmission policy comparison (same workload, same crash model):\n");
    println!(
        "{:<14} {:>10} {:>10} {:>14}",
        "policy", "completed", "failures", "fail/complete"
    );
    for policy in ["manual", "dgspl", "least-loaded"] {
        let (completed, failed) = run_policy(policy);
        println!(
            "{policy:<14} {completed:>10} {failed:>10} {:>14.3}",
            failed as f64 / completed.max(1) as f64
        );
    }
    println!(
        "\nThe DGSPL shortlist avoids the machine that just crashed and the\n\
         already-hot favourites, so resubmitted work stops re-crashing — the\n\
         paper's 345 h -> 8 h mid-crash reduction in miniature."
    );
}
